"""Unit tests for threshold schedules."""

import pytest

from repro.core.answers import AnswerSet
from repro.core.thresholds import ThresholdSchedule
from repro.errors import ThresholdError


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(ThresholdError, match="empty"):
            ThresholdSchedule([])

    def test_non_increasing_rejected(self):
        with pytest.raises(ThresholdError, match="strictly increasing"):
            ThresholdSchedule([0.1, 0.1])

    def test_linear(self):
        schedule = ThresholdSchedule.linear(0.0, 1.0, 5)
        assert list(schedule) == [0.0, 0.25, 0.5, 0.75, 1.0]

    def test_linear_single_point(self):
        assert list(ThresholdSchedule.linear(0.0, 0.7, 1)) == [0.7]

    def test_linear_invalid_count(self):
        with pytest.raises(ThresholdError):
            ThresholdSchedule.linear(0, 1, 0)

    def test_from_answer_scores_quantiles(self):
        answers = AnswerSet.from_pairs((f"i{i}", i / 100) for i in range(100))
        schedule = ThresholdSchedule.from_answer_scores(answers, 4)
        assert len(schedule) == 4
        assert schedule.final == pytest.approx(0.99)

    def test_from_answer_scores_few_distinct(self):
        answers = AnswerSet.from_pairs([("a", 0.1), ("b", 0.1), ("c", 0.5)])
        schedule = ThresholdSchedule.from_answer_scores(answers, 10)
        assert list(schedule) == [0.1, 0.5]

    def test_from_empty_answers_rejected(self):
        with pytest.raises(ThresholdError):
            ThresholdSchedule.from_answer_scores(AnswerSet.empty(), 3)


class TestAccess:
    def test_final(self):
        assert ThresholdSchedule([0.1, 0.2]).final == 0.2

    def test_indexing(self):
        assert ThresholdSchedule([0.1, 0.2])[1] == 0.2

    def test_equality_and_hash(self):
        a = ThresholdSchedule([0.1, 0.2])
        b = ThresholdSchedule([0.1, 0.2])
        assert a == b
        assert hash(a) == hash(b)
        assert a != ThresholdSchedule([0.1])

    def test_increments_start_with_none(self):
        schedule = ThresholdSchedule([0.1, 0.2, 0.4])
        assert schedule.increments() == [(None, 0.1), (0.1, 0.2), (0.2, 0.4)]


class TestTransforms:
    def test_prefix(self):
        schedule = ThresholdSchedule([0.1, 0.2, 0.3])
        assert list(schedule.prefix(2)) == [0.1, 0.2]

    def test_prefix_invalid(self):
        with pytest.raises(ThresholdError):
            ThresholdSchedule([0.1]).prefix(2)

    def test_coarsen_keeps_final(self):
        schedule = ThresholdSchedule.linear(0.1, 1.0, 10)
        coarse = schedule.coarsen(4)
        assert coarse.final == schedule.final
        assert len(coarse) < len(schedule)

    def test_coarsen_identity(self):
        schedule = ThresholdSchedule([0.1, 0.2])
        assert schedule.coarsen(1) == schedule

    def test_coarsen_to_single(self):
        schedule = ThresholdSchedule.linear(0.1, 1.0, 5)
        assert list(schedule.coarsen(100)) == [1.0]

    def test_coarsen_invalid(self):
        with pytest.raises(ThresholdError):
            ThresholdSchedule([0.1]).coarsen(0)

    def test_validate_alignment(self):
        schedule = ThresholdSchedule([0.1, 0.2])
        with pytest.raises(ThresholdError, match="2 thresholds"):
            ThresholdSchedule.validate_alignment(schedule, [1], "values")

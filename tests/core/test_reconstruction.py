"""Unit tests for section 4.1: interpolated curve -> measured profile."""

from fractions import Fraction

import pytest

from repro.core.incremental import SystemProfile
from repro.core.measures import Counts
from repro.core.pr_curve import PRCurve, PRPoint
from repro.core.reconstruction import (
    reconstruct_profile,
    reconstructed_sizes,
    reconstruction_error,
)
from repro.core.thresholds import ThresholdSchedule
from repro.errors import BoundsError, CurveError


def profile() -> SystemProfile:
    schedule = ThresholdSchedule([0.1, 0.2, 0.3])
    counts = (Counts(10, 8, 40), Counts(30, 16, 40), Counts(80, 24, 40))
    return SystemProfile(schedule, counts)


def bare_curve() -> PRCurve:
    return PRCurve.from_values(
        [(p.recall, p.precision) for p in profile().pr_curve()]
    )


class TestReconstructedSizes:
    def test_lossless_with_true_relevant(self):
        sizes = reconstructed_sizes(bare_curve(), 40)
        assert sizes == [(10, 8), (30, 16), (80, 24)]

    def test_counts_scale_with_guess(self):
        sizes = reconstructed_sizes(bare_curve(), 80)
        assert sizes == [(20, 16), (60, 32), (160, 48)]

    def test_rounding_keeps_monotonicity(self):
        curve = PRCurve.from_values([(0.11, 0.9), (0.12, 0.95)])
        sizes = reconstructed_sizes(curve, 7)  # fractional counts everywhere
        assert sizes[1][0] >= sizes[0][0]
        assert sizes[1][1] >= sizes[0][1]

    def test_zero_precision_point_rejected(self):
        curve = PRCurve([PRPoint(Fraction(0), Fraction(0))])
        with pytest.raises(CurveError, match="P = R = 0"):
            reconstructed_sizes(curve, 10)

    def test_relevant_guess_positive(self):
        with pytest.raises(BoundsError):
            reconstructed_sizes(bare_curve(), 0)


class TestReconstructProfile:
    def test_round_trip_with_true_relevant(self):
        rebuilt = reconstruct_profile(bare_curve(), 40, schedule=profile().schedule)
        assert rebuilt.counts == profile().counts

    def test_default_synthetic_schedule(self):
        rebuilt = reconstruct_profile(bare_curve(), 40)
        assert list(rebuilt.schedule) == [1.0, 2.0, 3.0]

    def test_trailing_zero_points_trimmed(self):
        curve = PRCurve(
            [
                PRPoint(Fraction(1, 10), Fraction(1, 2)),
                PRPoint(Fraction(2, 10), Fraction(1, 4)),
            ]
        )
        eleven = PRCurve(
            list(curve)
            + [PRPoint(Fraction(3, 10), Fraction(0))] * 0  # no trailing here
        )
        rebuilt = reconstruct_profile(eleven, 10)
        assert len(rebuilt.counts) == 2

    def test_interpolated_11pt_curve_reconstructible(self):
        interpolated = profile().pr_curve().interpolate()
        kept = PRCurve(
            [p for p in interpolated if not (p.precision == 0 and p.recall > 0)]
        )
        rebuilt = reconstruct_profile(kept, 40)
        # recall never exceeds the max measured recall
        final = rebuilt.counts[-1]
        assert final.recall <= Fraction(24, 40)

    def test_all_zero_curve_rejected(self):
        curve = PRCurve([PRPoint(Fraction(0), Fraction(0))])
        with pytest.raises(CurveError, match="no reconstructible"):
            reconstruct_profile(curve, 10)


class TestReconstructionError:
    def test_zero_error_with_true_relevant(self):
        rows = reconstruction_error(profile(), 40)
        for _delta, dp, dr in rows:
            assert dp == 0
            assert dr == 0

    def test_error_grows_with_bad_guess(self):
        # a tiny |H| guess forces coarse rounding -> some precision error
        rows_small = reconstruction_error(profile(), 3)
        max_small = max(dp for _d, dp, _dr in rows_small)
        rows_true = reconstruction_error(profile(), 40)
        max_true = max(dp for _d, dp, _dr in rows_true)
        assert max_small >= max_true

    def test_row_per_threshold(self):
        assert len(reconstruction_error(profile(), 40)) == 3

"""Unit tests for Equations 1-6 (paper section 3.1).

Count-space and ratio-space forms are tested individually and against
each other; the paper's Figure 7 case analysis drives the scenarios.
"""

from fractions import Fraction

import pytest

from repro.core.bounds import (
    best_case_correct,
    best_case_precision,
    best_case_recall,
    bound_counts,
    worst_case_correct,
    worst_case_precision,
    worst_case_recall,
)
from repro.core.measures import Counts
from repro.errors import BoundsError


class TestCountSpace:
    def test_best_case_small_a2_fig7a(self):
        # |A2| <= |T1|: everything S2 kept may be correct
        assert best_case_correct(original_correct=15, improved_answers=10) == 10

    def test_best_case_large_a2_fig7b(self):
        # |A2| > |T1|: at best all of T1 survives
        assert best_case_correct(original_correct=15, improved_answers=30) == 15

    def test_worst_case_detached_fig7c(self):
        # A2 fits among S1's false positives: zero correct
        assert worst_case_correct(40, 15, improved_answers=20) == 0

    def test_worst_case_overlap_fig7d(self):
        # false positives (25) cannot absorb 32 answers: 7 must be correct
        assert worst_case_correct(40, 15, improved_answers=32) == 7

    def test_worst_never_negative(self):
        assert worst_case_correct(100, 0, improved_answers=50) == 0

    def test_negative_inputs_rejected(self):
        with pytest.raises(BoundsError):
            best_case_correct(-1, 5)
        with pytest.raises(BoundsError):
            worst_case_correct(5, -1, 2)

    def test_inconsistent_t1_rejected(self):
        with pytest.raises(BoundsError):
            worst_case_correct(5, 9, 2)


class TestBoundCounts:
    def test_figure8_delta1(self):
        bounds = bound_counts(Counts(40, 15), improved_answers=32)
        assert bounds.worst.correct == 7
        assert bounds.best.correct == 15
        assert bounds.worst.precision == Fraction(7, 32)
        assert bounds.size_ratio == Fraction(4, 5)

    def test_subset_violation_rejected(self):
        with pytest.raises(BoundsError, match="subset property"):
            bound_counts(Counts(10, 5), improved_answers=11)

    def test_negative_improved_rejected(self):
        with pytest.raises(BoundsError):
            bound_counts(Counts(10, 5), improved_answers=-1)

    def test_relevant_carried_through(self):
        bounds = bound_counts(Counts(40, 15, 100), improved_answers=32)
        assert bounds.best.relevant == 100
        assert bounds.worst.relevant == 100

    def test_zero_original_answers(self):
        bounds = bound_counts(Counts(0, 0), improved_answers=0)
        assert bounds.size_ratio == Fraction(0)
        assert bounds.best.correct == 0

    def test_ordering_invariant(self):
        for a1, t1, a2 in [(40, 15, 32), (72, 27, 48), (9, 9, 3), (5, 0, 5)]:
            bounds = bound_counts(Counts(a1, t1), improved_answers=a2)
            assert bounds.worst.correct <= bounds.best.correct


class TestRatioSpace:
    def test_eq2_best_precision(self):
        # P2 = min(P1/ratio, 1)
        assert best_case_precision(Fraction(3, 8), Fraction(4, 5)) == Fraction(15, 32)
        assert best_case_precision(Fraction(3, 4), Fraction(1, 2)) == Fraction(1)

    def test_eq3_best_recall(self):
        # R2 = R1 * min(1, ratio/P1)
        assert best_case_recall(
            Fraction(1, 2), Fraction(3, 8), Fraction(4, 5)
        ) == Fraction(1, 2)
        assert best_case_recall(
            Fraction(1, 2), Fraction(1, 2), Fraction(1, 4)
        ) == Fraction(1, 4)

    def test_eq5_worst_precision_figure8(self):
        assert worst_case_precision(Fraction(3, 8), Fraction(4, 5)) == Fraction(7, 32)
        assert worst_case_precision(Fraction(3, 8), Fraction(2, 3)) == Fraction(1, 16)

    def test_eq5_clamps_at_zero(self):
        assert worst_case_precision(Fraction(1, 10), Fraction(1, 2)) == 0

    def test_eq6_worst_recall(self):
        # R2 = max(0, R1 ((ratio - 1)/P1 + 1))
        value = worst_case_recall(Fraction(1, 2), Fraction(1, 2), Fraction(3, 4))
        assert value == Fraction(1, 4)

    def test_eq6_clamps_at_zero(self):
        assert worst_case_recall(Fraction(1, 2), Fraction(1, 10), Fraction(1, 2)) == 0

    def test_zero_precision_original(self):
        # P1 = 0 => T1 empty => R bounds are 0
        assert best_case_recall(0, 0, Fraction(1, 2)) == 0
        assert worst_case_recall(0, 0, Fraction(1, 2)) == 0

    def test_zero_ratio_conventions(self):
        assert best_case_precision(Fraction(1, 2), 0) == Fraction(1)
        assert worst_case_precision(Fraction(1, 2), 0) == Fraction(0)

    def test_ratio_above_one_rejected(self):
        with pytest.raises(BoundsError, match="subset"):
            worst_case_precision(Fraction(1, 2), Fraction(3, 2))

    def test_ratio_one_collapses_to_original(self):
        # paper 3.3: with ratio 1 the bounds equal the original P/R exactly
        p1, r1 = Fraction(3, 8), Fraction(2, 5)
        assert best_case_precision(p1, 1) == p1
        assert worst_case_precision(p1, 1) == p1
        assert best_case_recall(r1, p1, 1) == r1
        assert worst_case_recall(r1, p1, 1) == r1


class TestCountRatioAgreement:
    """Equations 2/3/5/6 must agree with the count formulas exactly."""

    @pytest.mark.parametrize(
        "a1,t1,a2,h",
        [
            (40, 15, 32, 100),
            (72, 27, 48, 100),
            (10, 10, 3, 50),
            (10, 0, 10, 50),
            (100, 1, 99, 400),
            (7, 3, 7, 21),
            (5, 5, 5, 5),
        ],
    )
    def test_agreement(self, a1, t1, a2, h):
        original = Counts(a1, t1, h)
        bounds = bound_counts(original, a2)
        ratio = Fraction(a2, a1)
        p1 = original.precision
        r1 = original.recall
        assert bounds.best.precision_or(Fraction(1)) == best_case_precision(
            p1, ratio
        ) or a2 == 0
        assert bounds.worst.precision_or(Fraction(0)) == worst_case_precision(
            p1, ratio
        ) or a2 == 0
        assert bounds.best.recall == best_case_recall(r1, p1, ratio)
        assert bounds.worst.recall == worst_case_recall(r1, p1, ratio)

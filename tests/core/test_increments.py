"""Unit tests for increment-level P/R (Equations 7-8, paper section 3.2)."""

from fractions import Fraction

import pytest

from repro.core.increments import (
    IncrementPR,
    combine_increment_pr,
    increment_precision,
    increment_recall,
    increments_of_profile,
    recombine_profile,
)
from repro.core.measures import Counts
from repro.core.thresholds import ThresholdSchedule
from repro.errors import BoundsError


class TestIncrementRecall:
    def test_eq8(self):
        assert increment_recall(Fraction(3, 10), Fraction(9, 25)) == Fraction(3, 50)

    def test_decreasing_recall_rejected(self):
        with pytest.raises(BoundsError):
            increment_recall(Fraction(1, 2), Fraction(1, 4))


class TestIncrementPrecision:
    def test_eq7_figure8_values(self):
        # S1 of Figure 8 with |H|=100: R=15/100 P=3/8 then R=27/100 P=3/8
        value = increment_precision(
            Fraction(15, 100), Fraction(3, 8), Fraction(27, 100), Fraction(3, 8)
        )
        assert value == Fraction(3, 8)  # stable precision => increment matches

    def test_eq7_independent_of_h(self):
        # same counts under two |H| values give the same increment precision
        for h in (100, 1000):
            value = increment_precision(
                Fraction(15, h), Fraction(3, 8), Fraction(27, h), Fraction(3, 8)
            )
            assert value == Fraction(3, 8)

    def test_empty_increment_returns_none(self):
        value = increment_precision(
            Fraction(1, 10), Fraction(1, 2), Fraction(1, 10), Fraction(1, 2)
        )
        assert value is None

    def test_start_of_scale_low_point(self):
        # R=0 with positive precision denotes the empty answer set
        value = increment_precision(0, 1, Fraction(3, 10), Fraction(3, 5))
        assert value == Fraction(3, 5)

    def test_zero_precision_with_recall_inconsistent(self):
        with pytest.raises(BoundsError, match="inconsistent"):
            increment_precision(Fraction(1, 10), 0, Fraction(2, 10), Fraction(1, 2))

    def test_zero_precision_zero_recall_hides_size(self):
        with pytest.raises(BoundsError, match="hidden"):
            increment_precision(0, 0, Fraction(2, 10), Fraction(1, 2))

    def test_shrinking_answer_set_rejected(self):
        with pytest.raises(BoundsError, match="grow"):
            increment_precision(
                Fraction(5, 10), Fraction(1, 2), Fraction(5, 10), Fraction(9, 10)
            )


class TestCombine:
    def test_step4_recombination_round_trips(self):
        # counts: (50 answers, 30 correct) -> (70, 36), |H| = 100
        r_low, p_low = Fraction(30, 100), Fraction(30, 50)
        r_high, p_high = Fraction(36, 100), Fraction(36, 70)
        increment = IncrementPR(
            recall=increment_recall(r_low, r_high),
            precision=increment_precision(r_low, p_low, r_high, p_high),
        )
        combined = combine_increment_pr(r_low, p_low, increment)
        assert combined == (r_high, p_high)

    def test_from_start_of_scale(self):
        increment = IncrementPR(recall=Fraction(3, 10), precision=Fraction(3, 5))
        recall, precision = combine_increment_pr(0, 1, increment)
        assert (recall, precision) == (Fraction(3, 10), Fraction(3, 5))

    def test_empty_increment_rejected(self):
        with pytest.raises(BoundsError, match="empty"):
            combine_increment_pr(0, 1, IncrementPR(Fraction(0), None))

    def test_zero_precision_increment_rejected(self):
        with pytest.raises(BoundsError, match="count space"):
            combine_increment_pr(
                Fraction(1, 10), Fraction(1, 2), IncrementPR(Fraction(0), Fraction(0))
            )


class TestIncrementPRValidation:
    def test_recall_range(self):
        with pytest.raises(BoundsError):
            IncrementPR(Fraction(3, 2), Fraction(1, 2))

    def test_precision_range(self):
        with pytest.raises(BoundsError):
            IncrementPR(Fraction(1, 2), Fraction(3, 2))

    def test_none_precision_allowed(self):
        assert IncrementPR(Fraction(0), None).precision is None


class TestProfileDecomposition:
    def test_increments_and_recombine_round_trip(self):
        schedule = ThresholdSchedule([0.1, 0.2, 0.3])
        counts = [Counts(10, 4, 50), Counts(25, 9, 50), Counts(60, 12, 50)]
        increments = increments_of_profile(schedule, counts)
        assert increments[0] == Counts(10, 4, 50)
        assert increments[1] == Counts(15, 5, 50)
        assert increments[2] == Counts(35, 3, 50)
        assert recombine_profile(increments) == counts

    def test_recombine_empty(self):
        assert recombine_profile([]) == []

"""Test subpackage."""

"""Documented examples must execute (tools/check_docs.py, as a test).

Every fenced ``python`` block in README.md and docs/*.md runs here, one
parametrized case per document, so documentation cannot silently rot.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

_TOOL_PATH = Path(__file__).resolve().parents[2] / "tools" / "check_docs.py"
_SPEC = importlib.util.spec_from_file_location("check_docs", _TOOL_PATH)
check_docs = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_docs)

DOCUMENTS = check_docs.documented_files()


def test_documentation_exists():
    names = {path.name for path in DOCUMENTS}
    assert "README.md" in names
    assert "architecture.md" in names
    assert "api.md" in names


@pytest.mark.parametrize(
    "path", DOCUMENTS, ids=[path.name for path in DOCUMENTS]
)
def test_documented_examples_execute(path):
    blocks = check_docs.extract_python_blocks(path.read_text(encoding="utf-8"))
    assert blocks, f"{path.name} documents no executable python example"
    failures = check_docs.run_document(path)
    assert not failures, "\n".join(failures)

"""Documented examples must execute (tools/check_docs.py, as a test).

Every fenced ``python`` block in README.md and docs/*.md runs here, one
parametrized case per document, so documentation cannot silently rot.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

_TOOL_PATH = Path(__file__).resolve().parents[2] / "tools" / "check_docs.py"
_SPEC = importlib.util.spec_from_file_location("check_docs", _TOOL_PATH)
check_docs = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_docs)

DOCUMENTS = check_docs.documented_files()


def test_documentation_exists():
    names = {path.name for path in DOCUMENTS}
    assert "README.md" in names
    assert "architecture.md" in names
    assert "api.md" in names


@pytest.mark.parametrize(
    "path", DOCUMENTS, ids=[path.name for path in DOCUMENTS]
)
def test_documented_examples_execute(path):
    blocks = check_docs.extract_python_blocks(path.read_text(encoding="utf-8"))
    assert blocks, f"{path.name} documents no executable python example"
    failures = check_docs.run_document(path)
    assert not failures, "\n".join(failures)


@pytest.mark.parametrize(
    "path", DOCUMENTS, ids=[path.name for path in DOCUMENTS]
)
def test_documented_references_resolve(path):
    failures = check_docs.lint_references(path)
    assert not failures, "\n".join(failures)


class TestReferenceLinter:
    def test_module_attribute_and_nested_references_resolve(self):
        assert check_docs.resolve_reference("repro.matching")
        assert check_docs.resolve_reference(
            "repro.matching.similarity.backends"
        )
        assert check_docs.resolve_reference("repro.matching.numpy_disabled")
        assert check_docs.resolve_reference(
            "repro.matching.similarity.backends.SimilarityBackend.similarity"
        )

    def test_unresolvable_references_fail(self):
        assert not check_docs.resolve_reference("repro.no_such_module")
        assert not check_docs.resolve_reference("repro.matching.no_such_name")

    def test_lint_reports_file_and_line(self, tmp_path):
        doc = tmp_path / "stale.md"
        doc.write_text(
            "fine: `repro.matching.make_matcher`\n"
            "rotten: `repro.matching.gone_matcher`\n",
            encoding="utf-8",
        )
        failures = check_docs.lint_references(doc)
        assert failures == [
            "stale.md:2: unresolvable reference 'repro.matching.gone_matcher'"
        ]

"""Property tests for sub-increment segments (section 4.2)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.measures import Counts
from repro.core.subincrement import SubIncrementAnalyzer


@st.composite
def endpoint_pairs(draw):
    """Two ordered measurement points sharing |H|, plus a feasible world."""
    low_answers = draw(st.integers(min_value=0, max_value=60))
    low_correct = draw(st.integers(min_value=0, max_value=low_answers))
    grow = draw(st.integers(min_value=0, max_value=40))
    grow_correct = draw(st.integers(min_value=0, max_value=grow))
    relevant = low_correct + grow_correct + draw(
        st.integers(min_value=0, max_value=25)
    )
    low = Counts(low_answers, low_correct, relevant)
    high = Counts(low_answers + grow, low_correct + grow_correct, relevant)
    return low, high


@given(endpoint_pairs(), st.data())
def test_every_intermediate_size_has_consistent_segment(pair, data):
    low, high = pair
    analyzer = SubIncrementAnalyzer(low, high)
    n = data.draw(
        st.integers(min_value=low.answers, max_value=high.answers), label="n"
    )
    worst, best = analyzer.correct_range(n)
    assert low.correct <= worst <= best <= high.correct
    assert best <= n


@given(endpoint_pairs(), st.data())
def test_true_split_lies_on_segment(pair, data):
    """Any order in which the increment's answers arrive stays in-bounds."""
    low, high = pair
    analyzer = SubIncrementAnalyzer(low, high)
    inc_correct = analyzer.increment_correct
    inc_incorrect = analyzer.increment_incorrect
    n = data.draw(
        st.integers(min_value=low.answers, max_value=high.answers), label="n"
    )
    extra = n - low.answers
    # feasible number of correct among the first `extra` arrivals
    lo = max(0, extra - inc_incorrect)
    hi = min(extra, inc_correct)
    true_extra_correct = data.draw(
        st.integers(min_value=lo, max_value=hi), label="split"
    )
    worst, best = analyzer.correct_range(n)
    assert worst <= low.correct + true_extra_correct <= best


@given(endpoint_pairs())
def test_boundary_endpoints_degenerate(pair):
    low, high = pair
    analyzer = SubIncrementAnalyzer(low, high)
    first = analyzer.segment(low.answers)
    last = analyzer.segment(high.answers)
    assert first.worst.recall == first.best.recall
    assert last.worst.recall == last.best.recall


@given(endpoint_pairs())
def test_midpoints_inside_segments(pair):
    low, high = pair
    analyzer = SubIncrementAnalyzer(low, high)
    for segment in analyzer.boundary(step=3):
        mid = segment.midpoint()
        assert segment.worst.recall <= mid.recall <= segment.best.recall

"""Property tests: the scoring kernel never changes an answer.

Three families:

* **Kernel on/off** — for random repositories, queries, matchers and
  thresholds, matching with the repository cost kernel enabled (interned
  label-universe rows, matrix gathers, shared interned clustering) must
  produce byte-identical answer sets to the kernel-off PR-4 path.
* **Evolving streams** — the same identity must survive a delta stream:
  an incremental :class:`~repro.matching.evolution.EvolutionSession`
  with the kernel on (rows migrating across versions) stays
  byte-identical to kernel-off cold re-matches of every version.
* **Flat vs. reference search** — the flattened explicit-stack
  branch-and-bound must emit the *sequence* the recursive reference
  generator emits: same assignments, same score floats, same order —
  with and without the substrate, trimmed and untrimmed.

The on/off family runs through :mod:`helpers.differential` (the shared
byte-identity harness); the stream and search families keep bespoke
drivers because their contracts compare more than final answer sets.
"""

from helpers.differential import (
    MATCHERS,
    assert_combinations_identical,
    canonical as _canonical,
    make_workload,
)
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matching import (
    ExhaustiveMatcher,
    MatchingPipeline,
    SchemaSearch,
    canonical_answers,
    flat_search_disabled,
    kernel_disabled,
    make_matcher,
    substrate_disabled,
)
from repro.matching.evolution import EvolutionSession
from repro.matching.objective import ObjectiveFunction
from repro.matching.similarity.name import NameSimilarity
from repro.schema import churn_delta
from repro.schema.generator import GeneratorConfig, generate_repository
from repro.schema.mutations import extract_personal_schema
from repro.util import rng


@st.composite
def kernel_cases(draw):
    repo_seed = draw(st.integers(min_value=0, max_value=25))
    num_schemas = draw(st.integers(min_value=2, max_value=5))
    query_seed = draw(st.integers(min_value=0, max_value=25))
    matcher = draw(st.sampled_from(MATCHERS))
    with_thesaurus = draw(st.booleans())
    return repo_seed, num_schemas, query_seed, matcher, with_thesaurus


@settings(max_examples=25, deadline=None)
@given(kernel_cases())
def test_kernel_answer_sets_byte_identical(case):
    repo_seed, num_schemas, query_seed, (name, params), with_thesaurus = case
    workload = make_workload(
        repo_seed,
        num_schemas=num_schemas,
        query_seed=query_seed,
        with_thesaurus=with_thesaurus,
    )
    assert_combinations_identical(name, params, workload, toggles=("kernel",))


@settings(max_examples=10, deadline=None)
@given(
    repo_seed=st.integers(min_value=0, max_value=10),
    matcher=st.sampled_from(MATCHERS),
    steps=st.integers(min_value=1, max_value=3),
)
def test_kernel_identical_across_delta_stream(repo_seed, matcher, steps):
    """Kernel row migration across an evolving repository changes nothing."""
    name, params = matcher
    repo = generate_repository(
        GeneratorConfig(num_schemas=4, min_size=5, max_size=8, seed=repo_seed)
    )
    objective = ObjectiveFunction(NameSimilarity())
    queries = [
        extract_personal_schema(
            rng.make_tagged(repo_seed + index),
            repo.schemas()[index % 4],
            None,
            target_size=3,
            schema_id=f"prop-evolve-query-{index}",
        )
        for index in range(2)
    ]
    session = EvolutionSession(
        make_matcher(name, objective, **params), queries, 0.3, cache=False
    )
    session.match(repo)
    for step in range(steps):
        delta = churn_delta(session.repository, churn=0.4, seed=step)
        result, _report = session.apply(delta)
        with kernel_disabled():
            cold = MatchingPipeline(
                make_matcher(name, objective, **params), cache=False
            ).run(queries, session.repository, 0.3)
        assert canonical_answers(result.answer_sets) == canonical_answers(
            cold.answer_sets
        ), (name, step)


@settings(max_examples=30, deadline=None)
@given(
    repo_seed=st.integers(min_value=0, max_value=40),
    query_seed=st.integers(min_value=0, max_value=40),
    delta=st.sampled_from((0.05, 0.2, 0.35, 0.5, 0.7)),
    with_substrate=st.booleans(),
)
def test_flat_search_emits_reference_sequence(
    repo_seed, query_seed, delta, with_substrate
):
    """Flat and recursive searches: same mappings, same floats, same order."""
    repo = generate_repository(
        GeneratorConfig(num_schemas=2, min_size=5, max_size=10, seed=repo_seed)
    )
    objective = ObjectiveFunction(NameSimilarity())
    query = extract_personal_schema(
        rng.make_tagged(query_seed),
        repo.schemas()[query_seed % 2],
        None,
        target_size=3,
        schema_id="prop-flat-query",
    )
    for schema in repo:
        if with_substrate:
            search = SchemaSearch(
                query, schema, objective, substrate=objective.substrate()
            )
        else:
            with substrate_disabled():
                search = SchemaSearch(query, schema, objective)
        flat = list(search.exhaustive(delta))
        reference = list(search.exhaustive_reference(delta))
        assert flat == reference  # sequence equality: order and floats
        with flat_search_disabled():
            dispatched = list(search.exhaustive(delta))
        assert dispatched == reference


def test_pre_kernel_snapshot_restores_and_serves(tmp_path):
    """Format compatibility: a payload without a kernel section loads.

    Simulates a snapshot written before the kernel existed by stripping
    the ``kernel`` key out of the substrate section, then asserts the
    snapshot restores and serves byte-identically to a live match.
    """
    import json

    from repro.matching.similarity import persist
    from repro.schema.store import SnapshotStore

    repo = generate_repository(
        GeneratorConfig(num_schemas=4, min_size=5, max_size=9, seed=3)
    )
    objective = ObjectiveFunction(NameSimilarity())
    queries = [
        extract_personal_schema(
            rng.make_tagged(9),
            repo.schemas()[0],
            None,
            target_size=3,
            schema_id="pre-kernel-query",
        )
    ]
    matcher = ExhaustiveMatcher(objective)
    result = MatchingPipeline(matcher, cache=False).run(queries, repo, 0.3)

    payload = json.loads(persist.substrate_payload(objective.substrate()))
    assert "kernel" in payload
    del payload["kernel"]  # the pre-kernel payload format
    pre_kernel_payload = json.dumps(payload, sort_keys=True)

    store = SnapshotStore(tmp_path / "snap")
    meta = {
        "repository": SnapshotStore.repository_meta(repo),
        "queries": SnapshotStore.query_meta(queries),
        "matcher_fingerprint": result.matcher_key,
        "delta_max": result.delta_max,
    }
    sections = SnapshotStore.schema_sections(repo.schemas() + queries)
    results_payload = persist.results_payload(result)
    meta["results_section"] = persist._digest_named("results", results_payload)
    sections[meta["results_section"]] = results_payload
    meta["substrate_section"] = persist._digest_named(
        "substrate", pre_kernel_payload
    )
    sections[meta["substrate_section"]] = pre_kernel_payload
    store.save(meta, sections)

    fresh_objective = ObjectiveFunction(NameSimilarity())
    fresh_matcher = ExhaustiveMatcher(fresh_objective)
    snapshot = persist.load_snapshot(store, fresh_matcher)
    assert snapshot.result is not None
    assert fresh_objective.substrate().kernel() is None  # nothing restored
    assert canonical_answers(snapshot.result.answer_sets) == canonical_answers(
        result.answer_sets
    )
    # the restored universe serves (and the kernel builds on first prepare)
    live = fresh_matcher.match(snapshot.queries[0], snapshot.repository, 0.3)
    assert _canonical(live) == _canonical(result.answer_sets[0])
    assert fresh_objective.substrate().kernel() is not None

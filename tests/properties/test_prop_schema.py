"""Property tests for the schema substrate: parser round-trip and
mutation provenance preservation over randomly generated trees."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schema.model import Datatype, Schema, SchemaElement
from repro.schema.mutations import MutationConfig, mutate_subtree
from repro.schema.parser import parse_schema, serialize_schema
from repro.schema.vocabulary import get_domain
from repro.util import rng

NAMES = ["alpha", "beta-x", "GammaValue", "d1", "epsilon_long_name"]


@st.composite
def random_trees(draw, max_nodes: int = 12):
    size = draw(st.integers(min_value=1, max_value=max_nodes))
    nodes = []
    for i in range(size):
        nodes.append(
            SchemaElement(
                draw(st.sampled_from(NAMES)),
                draw(st.sampled_from(list(Datatype))),
                concept=draw(
                    st.one_of(st.none(), st.sampled_from(["c:a", "c:b", "c:c"]))
                ),
            )
        )
    for i in range(1, size):
        parent = draw(st.integers(min_value=0, max_value=i - 1))
        nodes[parent].add_child(nodes[i])
    return Schema("prop", nodes[0])


@settings(max_examples=80)
@given(random_trees())
def test_parser_round_trip(schema):
    text = serialize_schema(schema)
    parsed = parse_schema(text, schema.schema_id)
    assert serialize_schema(parsed) == text
    assert [e.name for e in parsed] == [e.name for e in schema]
    assert [e.concept for e in parsed] == [e.concept for e in schema]


@settings(max_examples=80)
@given(random_trees())
def test_parser_round_trip_preserves_leaf_datatypes(schema):
    parsed = parse_schema(serialize_schema(schema), schema.schema_id)
    for original, loaded in zip(schema, parsed):
        if original.is_leaf and original.datatype is not Datatype.COMPLEX:
            assert loaded.datatype is original.datatype


@settings(max_examples=60)
@given(random_trees(), st.integers(min_value=0, max_value=2**32))
def test_mutation_preserves_concept_multiset_without_drops(schema, seed):
    mutated = mutate_subtree(
        rng.make_tagged(seed),
        schema.root,
        get_domain("bibliography"),
        MutationConfig(),
        drop_probability=0.0,
    )
    assert [e.concept for e in mutated.walk()] == [
        e.concept for e in schema.root.walk()
    ]


@settings(max_examples=60)
@given(random_trees(), st.integers(min_value=0, max_value=2**32))
def test_mutation_with_drops_yields_concept_subsequence(schema, seed):
    mutated = mutate_subtree(
        rng.make_tagged(seed),
        schema.root,
        None,
        MutationConfig(0, 0, 0, 0),
        drop_probability=0.5,
    )
    original_concepts = [e.concept for e in schema.root.walk()]
    mutated_concepts = [e.concept for e in mutated.walk()]
    # mutated pre-order concepts must be a subsequence of the original's
    it = iter(original_concepts)
    assert all(c in it for c in mutated_concepts)
    assert mutated_concepts[0] == original_concepts[0]  # root never dropped

"""Property tests for top-N bounds and |H|-free relative bounds.

Both are derived views over the incremental bounds; their soundness must
survive arbitrary ranked answer sets, arbitrary subsets, and arbitrary
ground truths.
"""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.answers import AnswerSet
from repro.core.incremental import compute_incremental_bounds
from repro.core.relative import relative_bounds
from repro.core.topn import cutoffs_to_schedule, topn_bounds

from tests.properties.strategies import (
    improvement_scenarios,
    scenario_to_profiles,
)


@st.composite
def ranked_worlds(draw):
    """A ranked run, a subset of it, a ground truth, and cutoffs."""
    n = draw(st.integers(min_value=1, max_value=60))
    scores = sorted(
        draw(
            st.lists(
                st.floats(min_value=0, max_value=1, allow_nan=False),
                min_size=n,
                max_size=n,
            )
        )
    )
    items = [f"i{i:03d}" for i in range(n)]
    original = AnswerSet.from_pairs(zip(items, scores))
    keep_mask = draw(st.lists(st.booleans(), min_size=n, max_size=n))
    improved = AnswerSet.from_pairs(
        (item, score)
        for (item, score), keep in zip(zip(items, scores), keep_mask)
        if keep
    )
    truth_mask = draw(st.lists(st.booleans(), min_size=n, max_size=n))
    truth = frozenset(
        item for item, is_true in zip(items, truth_mask) if is_true
    )
    cutoffs = draw(
        st.lists(
            st.integers(min_value=1, max_value=n + 10),
            min_size=1,
            max_size=5,
        )
    )
    return original, improved, truth, cutoffs


@settings(max_examples=120)
@given(ranked_worlds())
def test_topn_bounds_bracket_truth_at_every_cutoff(world):
    original, improved, truth, cutoffs = world
    bounds = topn_bounds(original, improved, truth, cutoffs)
    for entry in bounds:
        actual = sum(
            1 for a in improved.at_threshold(entry.delta) if a.item in truth
        )
        assert entry.worst.correct <= actual <= entry.best.correct


@settings(max_examples=100)
@given(ranked_worlds())
def test_topn_schedule_sizes_cover_cutoffs(world):
    original, _improved, _truth, cutoffs = world
    schedule = cutoffs_to_schedule(original, cutoffs)
    for cutoff, delta in zip(sorted(set(cutoffs)), schedule):
        # ties may pull in extra answers but never fewer than the cutoff
        assert original.size_at(delta) >= min(cutoff, len(original))


@settings(max_examples=150)
@given(improvement_scenarios())
def test_relative_bounds_bracket_relative_truth(scenario):
    increments, kept_sizes, kept_correct, extra_relevant = scenario
    original, improved = scenario_to_profiles(
        increments, kept_sizes, extra_relevant
    )
    bounds = compute_incremental_bounds(original, improved)
    entries = relative_bounds(bounds)
    actual_total = 0
    original_total = 0
    for entry, correct, (_a, t1) in zip(entries, kept_correct, increments):
        actual_total += correct
        original_total += t1
        if original_total == 0:
            assert entry.worst_relative_recall is None
            continue
        actual_relative = Fraction(actual_total, original_total)
        assert entry.worst_relative_recall <= actual_relative
        assert actual_relative <= entry.best_relative_recall


@settings(max_examples=100)
@given(improvement_scenarios())
def test_max_recall_loss_is_honest(scenario):
    increments, kept_sizes, kept_correct, extra_relevant = scenario
    original, improved = scenario_to_profiles(
        increments, kept_sizes, extra_relevant
    )
    entries = relative_bounds(compute_incremental_bounds(original, improved))
    actual_total = 0
    original_total = 0
    for entry, correct, (_a, t1) in zip(entries, kept_correct, increments):
        actual_total += correct
        original_total += t1
        if entry.max_recall_loss is None:
            continue
        true_loss = 1 - Fraction(actual_total, original_total)
        assert true_loss <= entry.max_recall_loss

"""Property tests: mutation profiles round-trip through RepositoryDelta.

For random repositories, churn rates, mix weights and seeds, a churn
delta (built from the mutation operators) must

* preserve **element-id stability** on replacements — a replaced schema
  keeps its size, and every pre-order id keeps its datatype, concept
  and parent (only surface names may move);
* report **digest change iff content change** — per schema, the content
  digest differs from the old version exactly when some
  matching-observable field (name, datatype, parent structure) differs;
* be **invertible** — applying ``report.inverse()`` restores every
  schema id's content digest (and the repository digest itself when the
  delta removed nothing).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schema import churn_delta
from repro.schema.generator import GeneratorConfig, generate_repository


@st.composite
def churn_cases(draw):
    repo_seed = draw(st.integers(min_value=0, max_value=40))
    num_schemas = draw(st.integers(min_value=2, max_value=7))
    churn = draw(st.sampled_from((0.2, 0.5, 1.0)))
    delta_seed = draw(st.integers(min_value=0, max_value=40))
    weights = draw(
        st.sampled_from(
            (
                (3.0, 1.0, 1.0),  # the default replace-heavy mix
                (1.0, 0.0, 0.0),  # replacements only
                (0.0, 1.0, 0.0),  # additions only
                (0.0, 0.0, 1.0),  # removals only
                (1.0, 1.0, 1.0),  # uniform
            )
        )
    )
    return repo_seed, num_schemas, churn, delta_seed, weights


def _observable(schema):
    """Everything matching can see, per element id (mirrors the digest)."""
    return [
        (
            schema.element(element_id).name,
            schema.element(element_id).datatype,
            schema.parent_id(element_id),
        )
        for element_id in range(len(schema))
    ]


@settings(max_examples=40, deadline=None)
@given(churn_cases())
def test_churn_delta_roundtrip_and_invariants(case):
    repo_seed, num_schemas, churn, delta_seed, weights = case
    replace_weight, add_weight, remove_weight = weights
    repo = generate_repository(
        GeneratorConfig(
            num_schemas=num_schemas, min_size=4, max_size=8, seed=repo_seed
        )
    )
    delta = churn_delta(
        repo,
        churn=churn,
        seed=delta_seed,
        replace_weight=replace_weight,
        add_weight=add_weight,
        remove_weight=remove_weight,
    )
    new_repo, report = repo.apply(delta)

    # the report partitions the new repository exactly
    assert sorted(report.changed + report.unchanged) == sorted(
        schema.schema_id for schema in new_repo
    )
    assert not set(report.removed) & {s.schema_id for s in new_repo}

    # element-id stability on replacements: same size; datatype, concept
    # and parent survive per pre-order id (only names may move)
    for replacement_id in report.replaced:
        old = repo.schema(replacement_id)
        new = new_repo.schema(replacement_id)
        assert len(new) == len(old)
        for element_id in range(len(old)):
            assert (
                new.element(element_id).datatype
                == old.element(element_id).datatype
            )
            assert (
                new.element(element_id).concept
                == old.element(element_id).concept
            )
            assert new.parent_id(element_id) == old.parent_id(element_id)

    # digest change iff content change, schema by schema
    for schema in new_repo:
        schema_id = schema.schema_id
        if schema_id in repo:
            old = repo.schema(schema_id)
            content_changed = _observable(schema) != _observable(old)
            digest_changed = schema.content_digest() != old.content_digest()
            assert content_changed == digest_changed
            assert digest_changed == (schema_id in report.changed)
        else:
            assert schema_id in report.changed  # additions are always new

    # round trip: the inverse delta restores every id's content
    restored, inverse_report = new_repo.apply(report.inverse())
    assert {s.schema_id: s.content_digest() for s in restored} == {
        s.schema_id: s.content_digest() for s in repo
    }
    if not report.removed:
        # without removals even repository order — hence the repository
        # digest — round-trips
        assert restored.content_digest() == repo.content_digest()

    # determinism: the same inputs regenerate the same stream
    again = churn_delta(
        repo,
        churn=churn,
        seed=delta_seed,
        replace_weight=replace_weight,
        add_weight=add_weight,
        remove_weight=remove_weight,
    )
    assert repo.apply(again)[1].new_digest == report.new_digest

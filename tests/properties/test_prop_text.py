"""Property tests for the string similarity functions."""

from hypothesis import given
from hypothesis import strategies as st

from repro.util.text import (
    jaro,
    jaro_winkler,
    levenshtein,
    levenshtein_similarity,
    ngram_similarity,
    token_set_similarity,
)

words = st.text(
    alphabet=st.characters(min_codepoint=97, max_codepoint=122),
    min_size=0,
    max_size=12,
)


@given(words, words)
def test_levenshtein_symmetric(a, b):
    assert levenshtein(a, b) == levenshtein(b, a)


@given(words, words)
def test_levenshtein_identity(a, b):
    assert (levenshtein(a, b) == 0) == (a == b)


@given(words, words, words)
def test_levenshtein_triangle_inequality(a, b, c):
    assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)


@given(words, words)
def test_levenshtein_bounded_by_longer_string(a, b):
    assert levenshtein(a, b) <= max(len(a), len(b))


@given(words, words)
def test_levenshtein_at_least_length_difference(a, b):
    assert levenshtein(a, b) >= abs(len(a) - len(b))


@given(words, words)
def test_similarity_functions_in_unit_interval(a, b):
    for fn in (
        levenshtein_similarity,
        jaro,
        jaro_winkler,
        ngram_similarity,
        token_set_similarity,
    ):
        value = fn(a, b)
        assert 0.0 <= value <= 1.0, fn.__name__


@given(words, words)
def test_jaro_symmetric(a, b):
    assert jaro(a, b) == jaro(b, a)


@given(words)
def test_jaro_identity_is_one(a):
    assert jaro(a, a) == 1.0 or a == ""


@given(words, words)
def test_jaro_winkler_dominates_jaro(a, b):
    assert jaro_winkler(a, b) >= jaro(a, b)


@given(words, words)
def test_ngram_symmetric(a, b):
    assert ngram_similarity(a, b) == ngram_similarity(b, a)


@given(words)
def test_ngram_identity(a):
    assert ngram_similarity(a, a) == 1.0

"""Property tests: estimator guarantees hold over every feasible world."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.estimators import estimate_curve
from repro.core.confidence import random_curve_deviation
from repro.core.incremental import compute_incremental_bounds

from tests.properties.strategies import (
    improvement_scenarios,
    scenario_to_profiles,
)

STRATEGIES = ("midpoint", "random", "pessimistic", "optimistic")


@settings(max_examples=120)
@given(improvement_scenarios(), st.sampled_from(STRATEGIES))
def test_estimate_error_guarantee_holds_for_any_adversary(scenario, strategy):
    increments, kept_sizes, kept_correct, extra_relevant = scenario
    original, improved = scenario_to_profiles(
        increments, kept_sizes, extra_relevant
    )
    bounds = compute_incremental_bounds(original, improved)
    estimates = estimate_curve(bounds, strategy)
    actual_total = 0
    for estimate, correct in zip(estimates, kept_correct):
        actual_total += correct
        assert abs(Fraction(actual_total) - estimate.correct) <= estimate.max_error


@settings(max_examples=100)
@given(improvement_scenarios())
def test_midpoint_is_minimax(scenario):
    """No strategy has a smaller guaranteed error than the midpoint."""
    increments, kept_sizes, _kept_correct, extra_relevant = scenario
    original, improved = scenario_to_profiles(
        increments, kept_sizes, extra_relevant
    )
    bounds = compute_incremental_bounds(original, improved)
    midpoint = estimate_curve(bounds, "midpoint")
    for strategy in ("random", "pessimistic", "optimistic"):
        other = estimate_curve(bounds, strategy)
        for m, o in zip(midpoint, other):
            assert m.max_error <= o.max_error


@settings(max_examples=100)
@given(improvement_scenarios())
def test_chebyshev_interval_contains_expectation(scenario):
    increments, kept_sizes, _kept_correct, extra_relevant = scenario
    original, improved = scenario_to_profiles(
        increments, kept_sizes, extra_relevant
    )
    bounds = compute_incremental_bounds(original, improved)
    for deviation in random_curve_deviation(bounds, k=2.0):
        assert deviation.lower <= float(deviation.expected) <= deviation.upper
        assert deviation.variance >= 0

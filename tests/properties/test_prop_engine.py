"""Property test: branch-and-bound is exhaustive w.r.t. the threshold.

Random small schemas + random thresholds; the engine must return exactly
the brute-force answer set with identical scores.  This property is what
entitles the rest of the reproduction to call S1 "exhaustive".
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matching.engine import SchemaSearch
from repro.matching.mapping import Mapping
from repro.matching.objective import ObjectiveFunction, ObjectiveWeights
from repro.matching.similarity.name import NameSimilarity
from repro.schema.model import Datatype, Schema, SchemaElement
from repro.schema.repository import ElementHandle

NAMES = ["author", "title", "price", "year", "name", "code", "writer", "cost"]
TYPES = [Datatype.STRING, Datatype.INTEGER, Datatype.COMPLEX]


@st.composite
def random_schema(draw, schema_id: str, min_nodes: int, max_nodes: int):
    """A random small tree with random names/types."""
    size = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    nodes = [
        SchemaElement(
            draw(st.sampled_from(NAMES)), draw(st.sampled_from(TYPES))
        )
        for _ in range(size)
    ]
    for i in range(1, size):
        parent = draw(st.integers(min_value=0, max_value=i - 1))
        nodes[parent].add_child(nodes[i])
    return Schema(schema_id, nodes[0])


@st.composite
def engine_cases(draw):
    query = draw(random_schema("q", 1, 3))
    schema = draw(random_schema("s", 3, 6))
    delta = draw(st.sampled_from([0.1, 0.25, 0.4, 0.6, 1.0]))
    structure = draw(st.sampled_from([0.0, 0.25, 0.5]))
    return query, schema, delta, structure


def brute_force(query, schema, objective, delta_max):
    out = {}
    for combo in itertools.permutations(range(len(schema)), len(query)):
        mapping = Mapping(
            query.schema_id,
            tuple(ElementHandle(schema, j) for j in combo),
        )
        score = objective.mapping_cost(query, mapping)
        if score <= delta_max:
            out[combo] = score
    return out


@settings(max_examples=60, deadline=None)
@given(engine_cases())
def test_branch_and_bound_equals_brute_force(case):
    query, schema, delta, structure = case
    objective = ObjectiveFunction(
        NameSimilarity(), ObjectiveWeights(structure=structure)
    )
    engine = dict(SchemaSearch(query, schema, objective).exhaustive(delta))
    reference = brute_force(query, schema, objective, delta)
    assert engine == reference


@settings(max_examples=40, deadline=None)
@given(engine_cases(), st.integers(min_value=1, max_value=12))
def test_beam_subset_of_exhaustive(case, beam_width):
    query, schema, delta, structure = case
    objective = ObjectiveFunction(
        NameSimilarity(), ObjectiveWeights(structure=structure)
    )
    search = SchemaSearch(query, schema, objective)
    full = dict(search.exhaustive(delta))
    beam = dict(search.beam(delta, beam_width))
    assert set(beam) <= set(full)
    for key, score in beam.items():
        assert score == full[key]

"""Property tests: the numpy execution path never changes an answer.

The vectorised layer (:mod:`repro.matching.similarity.vectors`) is the
fourth A/B switch of the matching stack.  Its licence is the same as
the other three: it may only move work, never answers.  Four families
pin it down:

* **Numpy on/off** — for random repositories, queries, matchers and
  thresholds, the vectorised path must produce byte-identical answer
  sets to the pure-python spec path.
* **The full toggle grid** — all 2⁵ combinations of the five switches
  (substrate, kernel, flat-search, numpy, backends) agree byte for
  byte; this is the flagship run of the :mod:`helpers.differential`
  harness.
* **Evolving streams** — an incremental
  :class:`~repro.matching.evolution.EvolutionSession` on the vectorised
  path stays byte-identical to numpy-off cold re-matches across churn
  deltas.
* **Snapshots across modes** — a substrate payload saved with numpy on
  equals, byte for byte, one saved with numpy off; and each restores
  and serves under the *opposite* mode identically.  (Payloads export
  from the ``array('d')`` spec buffers, so they are numpy-agnostic by
  construction — these tests keep that true.)

Every run forces the adaptive dispatch floors to zero (the harness
does; bespoke drivers here use
:func:`~repro.matching.similarity.vectors.vector_thresholds`), so the
vector forms actually execute on hypothesis-sized workloads.  With
numpy not installed (or hidden via ``REPRO_NO_NUMPY=1``) the same
tests run spec-against-spec and still must pass — the subprocess test
at the bottom pins the absent-numpy configuration explicitly.
"""

import os
import subprocess
import sys
from pathlib import Path

from helpers.differential import (
    MATCHERS,
    assert_combinations_identical,
    canonical as _canonical,
    make_workload,
)
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matching import (
    MatchingPipeline,
    canonical_answers,
    make_matcher,
    numpy_available,
    numpy_disabled,
)
from repro.matching.evolution import EvolutionSession
from repro.matching.objective import ObjectiveFunction
from repro.matching.similarity import persist
from repro.matching.similarity.name import NameSimilarity
from repro.matching.similarity.vectors import vector_thresholds
from repro.schema import churn_delta
from repro.schema.generator import GeneratorConfig, generate_repository
from repro.schema.mutations import extract_personal_schema
from repro.util import rng


@st.composite
def numpy_cases(draw):
    repo_seed = draw(st.integers(min_value=0, max_value=25))
    num_schemas = draw(st.integers(min_value=2, max_value=5))
    query_seed = draw(st.integers(min_value=0, max_value=25))
    matcher = draw(st.sampled_from(MATCHERS))
    with_thesaurus = draw(st.booleans())
    return repo_seed, num_schemas, query_seed, matcher, with_thesaurus


@settings(max_examples=25, deadline=None)
@given(numpy_cases())
def test_numpy_answer_sets_byte_identical(case):
    repo_seed, num_schemas, query_seed, (name, params), with_thesaurus = case
    workload = make_workload(
        repo_seed,
        num_schemas=num_schemas,
        query_seed=query_seed,
        with_thesaurus=with_thesaurus,
    )
    assert_combinations_identical(name, params, workload, toggles=("numpy",))


@settings(max_examples=6, deadline=None)
@given(numpy_cases())
def test_all_toggle_combinations_byte_identical(case):
    """All 2⁵ switch combinations agree — the full differential grid."""
    repo_seed, num_schemas, query_seed, (name, params), with_thesaurus = case
    workload = make_workload(
        repo_seed,
        num_schemas=num_schemas,
        query_seed=query_seed,
        with_thesaurus=with_thesaurus,
    )
    assert_combinations_identical(
        name, params, workload, thresholds=(0.15, 0.45)
    )


@settings(max_examples=10, deadline=None)
@given(
    repo_seed=st.integers(min_value=0, max_value=10),
    matcher=st.sampled_from(MATCHERS),
    steps=st.integers(min_value=1, max_value=3),
)
def test_numpy_identical_across_delta_stream(repo_seed, matcher, steps):
    """Vectorised incremental sessions match numpy-off cold re-matches."""
    name, params = matcher
    repo = generate_repository(
        GeneratorConfig(num_schemas=4, min_size=5, max_size=8, seed=repo_seed)
    )
    objective = ObjectiveFunction(NameSimilarity())
    queries = [
        extract_personal_schema(
            rng.make_tagged(repo_seed + index),
            repo.schemas()[index % 4],
            None,
            target_size=3,
            schema_id=f"prop-numpy-evolve-query-{index}",
        )
        for index in range(2)
    ]
    with vector_thresholds(0, 0):
        session = EvolutionSession(
            make_matcher(name, objective, **params), queries, 0.3, cache=False
        )
        session.match(repo)
        for step in range(steps):
            delta = churn_delta(session.repository, churn=0.4, seed=step)
            result, _report = session.apply(delta)
            with numpy_disabled():
                cold = MatchingPipeline(
                    make_matcher(
                        name, ObjectiveFunction(NameSimilarity()), **params
                    ),
                    cache=False,
                ).run(queries, session.repository, 0.3)
            assert canonical_answers(result.answer_sets) == canonical_answers(
                cold.answer_sets
            ), (name, step)


def _matched_substrate(numpy_on: bool):
    """One seeded workload matched end to end; returns (objective, answers).

    A fresh objective each call, the whole run under one numpy mode with
    the dispatch floors at zero — so the substrate's persisted state
    (kernel rows, cached matrices) was *built* by that mode's code.
    """
    repo = generate_repository(
        GeneratorConfig(num_schemas=4, min_size=5, max_size=9, seed=11)
    )
    objective = ObjectiveFunction(NameSimilarity())
    query = extract_personal_schema(
        rng.make_tagged(7),
        repo.schemas()[1],
        None,
        target_size=3,
        schema_id="prop-numpy-snapshot-query",
    )
    matcher = make_matcher("exhaustive", objective)
    with vector_thresholds(0, 0):
        if numpy_on:
            answers = matcher.match(query, repo, 0.3)
        else:
            with numpy_disabled():
                answers = matcher.match(query, repo, 0.3)
    return repo, objective, query, answers


def test_snapshot_payload_identical_across_numpy_modes():
    """Persisted substrate state is numpy-agnostic, byte for byte.

    Payloads export from the ``array('d')`` spec buffers and the
    matrices' cost tuples, never from ndarray views — so the same
    workload matched under either mode must serialize identically, and
    each payload must restore and serve under the opposite mode with
    byte-identical answers (the save-on/restore-off and
    save-off/restore-on diagonal).
    """
    repo_on, objective_on, query, answers_on = _matched_substrate(True)
    repo_off, objective_off, _query, answers_off = _matched_substrate(False)
    assert _canonical(answers_on) == _canonical(answers_off)

    payload_on = persist.substrate_payload(objective_on.substrate())
    payload_off = persist.substrate_payload(objective_off.substrate())
    assert payload_on == payload_off  # byte equality of the JSON sections

    # save numpy-on -> restore & serve numpy-off
    fresh_off = ObjectiveFunction(NameSimilarity())
    persist.restore_substrate(fresh_off.substrate(), payload_on, repo_on)
    with vector_thresholds(0, 0), numpy_disabled():
        served_off = make_matcher("exhaustive", fresh_off).match(
            query, repo_on, 0.3
        )
    assert _canonical(served_off) == _canonical(answers_on)

    # save numpy-off -> restore & serve numpy-on
    fresh_on = ObjectiveFunction(NameSimilarity())
    persist.restore_substrate(fresh_on.substrate(), payload_off, repo_off)
    with vector_thresholds(0, 0):
        served_on = make_matcher("exhaustive", fresh_on).match(
            query, repo_off, 0.3
        )
    assert _canonical(served_on) == _canonical(answers_off)


_SUBPROCESS_SCRIPT = """
import sys
from repro.matching import make_matcher, numpy_available
from repro.matching.objective import ObjectiveFunction
from repro.matching.similarity.name import NameSimilarity
from repro.schema.generator import GeneratorConfig, generate_repository
from repro.schema.mutations import extract_personal_schema
from repro.util import rng

assert not numpy_available(), "REPRO_NO_NUMPY=1 must hide numpy"
repo = generate_repository(
    GeneratorConfig(num_schemas=4, min_size=5, max_size=9, seed=11)
)
objective = ObjectiveFunction(NameSimilarity())
query = extract_personal_schema(
    rng.make_tagged(7), repo.schemas()[1], None,
    target_size=3, schema_id="prop-numpy-snapshot-query",
)
answers = make_matcher("exhaustive", objective).match(query, repo, 0.3)
sys.stdout.write(
    repr([(a.item.key, a.score) for a in answers.answers()])
)
"""


def test_numpy_absent_process_byte_identical():
    """A numpy-less interpreter serves the same bytes as the vector path.

    Spawns a subprocess with ``REPRO_NO_NUMPY=1`` (the CI mechanism for
    the numpy-absent configuration), matches the same seeded workload
    this process matches on the vectorised path, and compares the
    canonical answers across the process boundary.
    """
    env = dict(os.environ)
    env["REPRO_NO_NUMPY"] = "1"
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    spawned = subprocess.run(
        [sys.executable, "-c", _SUBPROCESS_SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    _repo, _objective, _query, answers = _matched_substrate(
        numpy_on=numpy_available()
    )
    assert spawned.stdout.encode() == _canonical(answers)

"""Property tests for answer-set threshold structure (Figure 1)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.answers import AnswerSet

score_lists = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    min_size=0,
    max_size=60,
)


def build(scores):
    return AnswerSet.from_pairs((f"item-{i}", s) for i, s in enumerate(scores))


@given(score_lists, st.floats(min_value=0, max_value=1), st.floats(min_value=0, max_value=1))
def test_threshold_monotonicity(scores, d1, d2):
    """δ1 ≤ δ2 ⇒ A^δ1 ⊆ A^δ2 — the paper's Figure 1 property."""
    low, high = min(d1, d2), max(d1, d2)
    answers = build(scores)
    assert answers.at_threshold(low).is_subset_of(answers.at_threshold(high))
    assert answers.size_at(low) <= answers.size_at(high)


@given(score_lists, st.floats(min_value=0, max_value=1))
def test_size_at_matches_at_threshold(scores, delta):
    answers = build(scores)
    assert answers.size_at(delta) == len(answers.at_threshold(delta))


@given(score_lists, st.lists(st.floats(min_value=0, max_value=1), min_size=1, max_size=6))
def test_increments_partition_answer_set(scores, raw_deltas):
    deltas = sorted(set(raw_deltas))
    answers = build(scores)
    pieces = []
    previous = None
    for delta in deltas:
        pieces.append(answers.increment(previous, delta))
        previous = delta
    total_items = set()
    for piece in pieces:
        assert not (total_items & set(piece.items()))
        total_items |= set(piece.items())
    assert total_items == set(answers.at_threshold(deltas[-1]).items())


@given(score_lists, st.integers(min_value=0, max_value=70))
def test_top_n_scores_are_the_n_smallest(scores, n):
    answers = build(scores)
    top = answers.top_n(n)
    assert len(top) == min(n, len(answers))
    assert top.scores() == sorted(scores)[: len(top)]


@given(score_lists)
def test_scores_sorted(scores):
    assert build(scores).scores() == sorted(scores)


@given(score_lists)
def test_union_with_self_is_identity(scores):
    answers = build(scores)
    union = answers.union(answers)
    assert union.items() == answers.items()
    assert union.scores() == answers.scores()

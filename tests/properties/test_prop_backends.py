"""Property tests: the similarity-backend seam never changes an answer.

Four families, mirroring the kernel/numpy byte-identity suites:

* **Seam on/off** — for random workloads, matchers and thresholds, a
  default (lexical) objective must produce byte-identical answer sets
  whether names score through the :class:`~repro.matching.similarity
  .backends.LexicalBackend` or the direct pre-backend
  :class:`~repro.matching.similarity.name.NameSimilarity` path — and in
  combination with the kernel/substrate toggles, because the seam sits
  under both optimisation layers.
* **Backend variants under the optimisation toggles** — the ``bm25``,
  ``dense`` and ``ensemble`` registry variants must be byte-identical
  with the substrate/kernel/numpy optimisations on or off: the backend
  defines the scores, the layers above must merely reproduce them.
* **Evolving streams** — a corpus-sensitive backend (BM25) re-freezes
  its statistics after every repository delta; an incremental
  :class:`~repro.matching.evolution.EvolutionSession` over it must stay
  byte-identical to cold full re-matches of every version (the
  corpus-token invalidation path of the substrate and kernel).
* **Snapshot compatibility** — a substrate payload written before
  backends existed (no ``corpus_token`` key in the kernel section)
  still restores, adopts its kernel rows, and serves byte-identically.
"""

from helpers.differential import (
    MATCHERS,
    assert_combinations_identical,
    canonical as _canonical,
    make_workload,
)
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matching import (
    ExhaustiveMatcher,
    MatchingPipeline,
    canonical_answers,
    make_matcher,
)
from repro.matching.evolution import EvolutionSession
from repro.matching.objective import ObjectiveFunction
from repro.matching.similarity.name import NameSimilarity
from repro.schema import churn_delta
from repro.schema.generator import GeneratorConfig, generate_repository
from repro.schema.mutations import extract_personal_schema
from repro.util import rng

#: the backend matcher variants of the registry, default parameters
BACKEND_VARIANTS = [("bm25", {}), ("dense", {}), ("ensemble", {})]


@st.composite
def seam_cases(draw):
    repo_seed = draw(st.integers(min_value=0, max_value=25))
    num_schemas = draw(st.integers(min_value=2, max_value=5))
    query_seed = draw(st.integers(min_value=0, max_value=25))
    matcher = draw(st.sampled_from(MATCHERS))
    with_thesaurus = draw(st.booleans())
    return repo_seed, num_schemas, query_seed, matcher, with_thesaurus


@settings(max_examples=20, deadline=None)
@given(seam_cases())
def test_backend_seam_byte_identical(case):
    """Lexical backend route vs the direct pre-backend path: same bytes."""
    repo_seed, num_schemas, query_seed, (name, params), with_thesaurus = case
    workload = make_workload(
        repo_seed,
        num_schemas=num_schemas,
        query_seed=query_seed,
        with_thesaurus=with_thesaurus,
    )
    assert_combinations_identical(
        name, params, workload, toggles=("backends",)
    )


@settings(max_examples=8, deadline=None)
@given(
    repo_seed=st.integers(min_value=0, max_value=12),
    query_seed=st.integers(min_value=0, max_value=12),
)
def test_backend_seam_composes_with_kernel_and_substrate(
    repo_seed, query_seed
):
    """All subsets of {substrate, kernel, backends}: one answer set."""
    workload = make_workload(repo_seed, query_seed=query_seed)
    assert_combinations_identical(
        "exhaustive",
        {},
        workload,
        toggles=("substrate", "kernel", "backends"),
    )


@st.composite
def variant_cases(draw):
    repo_seed = draw(st.integers(min_value=0, max_value=20))
    num_schemas = draw(st.integers(min_value=2, max_value=4))
    query_seed = draw(st.integers(min_value=0, max_value=20))
    variant = draw(st.sampled_from(BACKEND_VARIANTS))
    return repo_seed, num_schemas, query_seed, variant


@settings(max_examples=15, deadline=None)
@given(variant_cases())
def test_backend_variants_identical_across_toggles(case):
    """bm25/dense/ensemble: optimisation layers reproduce backend scores.

    The ``backends`` toggle is deliberately included: it must be inert
    for non-lexical backends (they always score through themselves), so
    flipping it alongside the optimisation switches must change nothing.
    """
    repo_seed, num_schemas, query_seed, (name, params) = case
    workload = make_workload(
        repo_seed, num_schemas=num_schemas, query_seed=query_seed
    )
    assert_combinations_identical(
        name,
        params,
        workload,
        thresholds=(0.15, 0.3),
        toggles=("substrate", "kernel", "backends"),
    )


@settings(max_examples=8, deadline=None)
@given(
    repo_seed=st.integers(min_value=0, max_value=10),
    variant=st.sampled_from(BACKEND_VARIANTS),
    steps=st.integers(min_value=1, max_value=3),
)
def test_corpus_sensitive_rematch_identical_across_deltas(
    repo_seed, variant, steps
):
    """Evolving repository: BM25-family sessions equal cold re-matches.

    Each delta moves the corpus statistics, so the session must take
    the full-recompute path (corpus-sensitive objectives cannot reuse
    stored pair scores) and still land byte-identical to a cold run
    against the evolved repository.
    """
    name, params = variant
    repo = generate_repository(
        GeneratorConfig(num_schemas=4, min_size=5, max_size=8, seed=repo_seed)
    )
    objective = ObjectiveFunction(NameSimilarity())
    queries = [
        extract_personal_schema(
            rng.make_tagged(repo_seed + index),
            repo.schemas()[index % 4],
            None,
            target_size=3,
            schema_id=f"prop-backend-evolve-query-{index}",
        )
        for index in range(2)
    ]
    session = EvolutionSession(
        make_matcher(name, objective, **params), queries, 0.3, cache=False
    )
    session.match(repo)
    for step in range(steps):
        delta = churn_delta(session.repository, churn=0.4, seed=step)
        result, _report = session.apply(delta)
        if session.matcher.objective.corpus_sensitive:
            assert result.rematch is not None
            assert result.rematch.full_recompute
        cold = MatchingPipeline(
            make_matcher(name, objective, **params), cache=False
        ).run(queries, session.repository, 0.3)
        assert canonical_answers(result.answer_sets) == canonical_answers(
            cold.answer_sets
        ), (name, step)


def test_pre_backend_snapshot_restores_and_serves(tmp_path):
    """Format compatibility: a payload without ``corpus_token`` loads.

    Simulates a snapshot written before similarity backends existed by
    stripping the ``corpus_token`` key out of the persisted kernel
    state, then asserts the snapshot restores — kernel rows adopted,
    not refused — and serves byte-identically to the original run.
    """
    import json

    from repro.matching.similarity import persist
    from repro.schema.store import SnapshotStore

    repo = generate_repository(
        GeneratorConfig(num_schemas=4, min_size=5, max_size=9, seed=7)
    )
    objective = ObjectiveFunction(NameSimilarity())
    queries = [
        extract_personal_schema(
            rng.make_tagged(11),
            repo.schemas()[0],
            None,
            target_size=3,
            schema_id="pre-backend-query",
        )
    ]
    matcher = ExhaustiveMatcher(objective)
    result = MatchingPipeline(matcher, cache=False).run(queries, repo, 0.3)

    payload = json.loads(persist.substrate_payload(objective.substrate()))
    assert payload["kernel"] is not None
    assert "corpus_token" in payload["kernel"]
    del payload["kernel"]["corpus_token"]  # the pre-backend payload format
    pre_backend_payload = json.dumps(payload, sort_keys=True)

    store = SnapshotStore(tmp_path / "snap")
    meta = {
        "repository": SnapshotStore.repository_meta(repo),
        "queries": SnapshotStore.query_meta(queries),
        "matcher_fingerprint": result.matcher_key,
        "delta_max": result.delta_max,
    }
    sections = SnapshotStore.schema_sections(repo.schemas() + queries)
    results_payload = persist.results_payload(result)
    meta["results_section"] = persist._digest_named("results", results_payload)
    sections[meta["results_section"]] = results_payload
    meta["substrate_section"] = persist._digest_named(
        "substrate", pre_backend_payload
    )
    sections[meta["substrate_section"]] = pre_backend_payload
    store.save(meta, sections)

    fresh_objective = ObjectiveFunction(NameSimilarity())
    fresh_matcher = ExhaustiveMatcher(fresh_objective)
    snapshot = persist.load_snapshot(store, fresh_matcher)
    assert snapshot.result is not None
    kernel = fresh_objective.substrate().kernel()
    assert kernel is not None
    assert kernel.rows_migrated > 0  # the saved rows were adopted, not refused
    assert canonical_answers(snapshot.result.answer_sets) == canonical_answers(
        result.answer_sets
    )
    live = fresh_matcher.match(snapshot.queries[0], snapshot.repository, 0.3)
    assert _canonical(live) == _canonical(result.answer_sets[0])


def test_backend_snapshot_round_trip(tmp_path):
    """A BM25-variant snapshot round-trips: fingerprint-gated, byte-true.

    The derived objective's fingerprint embeds the backend, so the
    restore must (a) succeed under an identically configured variant and
    (b) adopt the kernel rows — the corpus token is re-derived from the
    restored repository before the kernel migration gate compares it.
    """
    from repro.errors import SnapshotError
    from repro.matching.similarity import persist

    repo = generate_repository(
        GeneratorConfig(num_schemas=4, min_size=5, max_size=9, seed=5)
    )
    queries = [
        extract_personal_schema(
            rng.make_tagged(13),
            repo.schemas()[1],
            None,
            target_size=3,
            schema_id="backend-snapshot-query",
        )
    ]
    matcher = make_matcher("bm25", ObjectiveFunction(NameSimilarity()))
    result = MatchingPipeline(matcher, cache=False).run(queries, repo, 0.3)
    persist.save_snapshot(
        tmp_path / "snap",
        repo,
        queries=queries,
        result=result,
        substrate=matcher.objective.substrate(),
    )

    fresh = make_matcher("bm25", ObjectiveFunction(NameSimilarity()))
    snapshot = persist.load_snapshot(tmp_path / "snap", fresh)
    assert snapshot.result is not None
    kernel = fresh.objective.substrate().kernel()
    assert kernel is not None and kernel.rows_migrated > 0
    live = fresh.match(snapshot.queries[0], snapshot.repository, 0.3)
    assert _canonical(live) == _canonical(result.answer_sets[0])

    # a differently configured variant must refuse the payload loudly
    foreign = make_matcher(
        "bm25", ObjectiveFunction(NameSimilarity()), k1=1.2
    )
    try:
        persist.load_snapshot(tmp_path / "snap", foreign)
    except SnapshotError:
        pass
    else:  # pragma: no cover - the assertion is the refusal itself
        raise AssertionError("foreign backend configuration was accepted")

"""Shared hypothesis strategies for the property-test suite.

The central generator builds *feasible improvement scenarios*: a judged
original profile (per-increment answer/correct counts) together with an
arbitrary admissible behaviour of an improved system (how many answers it
keeps per increment and how many of those happen to be correct).  Every
such scenario is a possible world under the paper's assumptions, so the
bounds must contain it — that is the soundness property.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.core.incremental import SizeProfile, SystemProfile
from repro.core.measures import Counts
from repro.core.thresholds import ThresholdSchedule

__all__ = [
    "increment_lists",
    "improvement_scenarios",
    "scenario_to_profiles",
]


@st.composite
def increment_lists(draw, max_increments: int = 6, max_per_increment: int = 40):
    """[(answers_i, correct_i)] per increment of the original system."""
    count = draw(st.integers(min_value=1, max_value=max_increments))
    out = []
    for _ in range(count):
        answers = draw(st.integers(min_value=0, max_value=max_per_increment))
        correct = draw(st.integers(min_value=0, max_value=answers))
        out.append((answers, correct))
    return out


@st.composite
def improvement_scenarios(draw, max_increments: int = 6):
    """(original increments, kept sizes, kept-correct counts).

    The kept-correct count per increment is drawn from its full feasible
    range ``[max(0, k - incorrect), min(t, k)]`` — i.e. every adversary
    between the paper's best and worst case, inclusive.
    """
    increments = draw(increment_lists(max_increments=max_increments))
    kept_sizes = []
    kept_correct = []
    for answers, correct in increments:
        kept = draw(st.integers(min_value=0, max_value=answers))
        incorrect = answers - correct
        low = max(0, kept - incorrect)
        high = min(correct, kept)
        kept_sizes.append(kept)
        kept_correct.append(draw(st.integers(min_value=low, max_value=high)))
    extra_relevant = draw(st.integers(min_value=0, max_value=20))
    return increments, kept_sizes, kept_correct, extra_relevant


def scenario_to_profiles(increments, kept_sizes, extra_relevant):
    """Materialise (SystemProfile, SizeProfile) from a drawn scenario."""
    schedule = ThresholdSchedule(
        [float(i + 1) for i in range(len(increments))]
    )
    total_correct = sum(t for _a, t in increments)
    relevant = total_correct + extra_relevant
    counts = []
    answers_total = 0
    correct_total = 0
    for a, t in increments:
        answers_total += a
        correct_total += t
        counts.append(Counts(answers_total, correct_total, relevant))
    sizes = []
    kept_total = 0
    for kept in kept_sizes:
        kept_total += kept
        sizes.append(kept_total)
    return (
        SystemProfile(schedule, tuple(counts)),
        SizeProfile(schedule, tuple(sizes)),
    )

"""Property test: sharded matching is exactly serial matching.

For random repositories, queries and shard counts, ``batch_match`` over
the full repository must equal the union of per-shard matches — and both
must equal plain per-query ``match``.  This is the pipeline's licence to
fan work out: partitioning the repository can never add, lose or rescore
an answer.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matching import ExhaustiveMatcher, TopKCandidateMatcher, shard_repository
from repro.matching.objective import ObjectiveFunction
from repro.matching.similarity.name import NameSimilarity
from repro.schema.generator import GeneratorConfig, generate_repository
from repro.schema.mutations import extract_personal_schema
from repro.util import rng


@st.composite
def pipeline_cases(draw):
    repo_seed = draw(st.integers(min_value=0, max_value=30))
    num_schemas = draw(st.integers(min_value=2, max_value=6))
    num_shards = draw(st.integers(min_value=1, max_value=8))
    query_seed = draw(st.integers(min_value=0, max_value=30))
    delta = draw(st.sampled_from([0.15, 0.3, 0.45]))
    topk = draw(st.booleans())
    return repo_seed, num_schemas, num_shards, query_seed, delta, topk


@settings(max_examples=20, deadline=None)
@given(pipeline_cases())
def test_batch_match_equals_union_of_shard_matches(case):
    repo_seed, num_schemas, num_shards, query_seed, delta, topk = case
    repo = generate_repository(
        GeneratorConfig(
            num_schemas=num_schemas, min_size=5, max_size=9, seed=repo_seed
        )
    )
    objective = ObjectiveFunction(NameSimilarity())
    query = extract_personal_schema(
        rng.make_tagged(query_seed),
        repo.schemas()[query_seed % num_schemas],
        None,
        target_size=3,
        schema_id="prop-query",
    )
    matcher = (
        TopKCandidateMatcher(objective, candidates_per_element=3)
        if topk
        else ExhaustiveMatcher(objective)
    )

    whole = matcher.match(query, repo, delta)
    batched = matcher.batch_match(
        [query], repo, delta, workers=1, shards=num_shards, cache=False
    )[0]

    union = None
    for shard in shard_repository(repo, num_shards):
        part = matcher.match(query, shard, delta)
        union = part if union is None else union.union(part)

    whole_pairs = sorted((a.item.key, a.score) for a in whole)
    assert sorted((a.item.key, a.score) for a in batched) == whole_pairs
    assert sorted((a.item.key, a.score) for a in union) == whole_pairs

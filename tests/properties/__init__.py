"""Test subpackage."""

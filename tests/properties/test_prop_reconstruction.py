"""Property tests for section 4.1 reconstruction round-trips."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.incremental import SystemProfile
from repro.core.measures import Counts
from repro.core.pr_curve import PRCurve
from repro.core.reconstruction import reconstruct_profile
from repro.core.thresholds import ThresholdSchedule


@st.composite
def judged_profiles(draw):
    """Monotone judged profiles with positive correct counts everywhere.

    Zero-precision points hide their answer count (section 4.1), so the
    round-trip property is stated for profiles with T >= 1 at the first
    threshold — the realistic published-curve situation.
    """
    n = draw(st.integers(min_value=1, max_value=6))
    answers = 0
    correct = 0
    counts = []
    for i in range(n):
        grow = draw(st.integers(min_value=1, max_value=30))
        grow_correct = draw(
            st.integers(min_value=1 if i == 0 else 0, max_value=grow)
        )
        answers += grow
        correct += grow_correct
        counts.append((answers, correct))
    relevant = correct + draw(st.integers(min_value=0, max_value=30))
    schedule = ThresholdSchedule([float(i + 1) for i in range(n)])
    return SystemProfile(
        schedule, tuple(Counts(a, t, relevant) for a, t in counts)
    )


@given(judged_profiles())
def test_reconstruction_with_true_relevant_is_lossless(profile):
    bare = PRCurve.from_values(
        [(p.recall, p.precision) for p in profile.pr_curve()]
    )
    rebuilt = reconstruct_profile(
        bare, profile.relevant, schedule=profile.schedule
    )
    assert rebuilt.counts == profile.counts


@given(judged_profiles(), st.integers(min_value=1, max_value=2000))
def test_reconstruction_always_yields_valid_profile(profile, guess):
    bare = PRCurve.from_values(
        [(p.recall, p.precision) for p in profile.pr_curve()]
    )
    rebuilt = reconstruct_profile(bare, guess)
    # SystemProfile validation (monotone counts, consistent |H|) passed;
    # additionally precision must round-trip within rounding error wherever
    # the rebuilt counts are big enough for rounding to be benign (a tiny
    # |H| guess legitimately distorts single-digit counts, up to collapsing
    # them to zero answers)
    for original_point, rebuilt_counts in zip(profile.pr_curve(), rebuilt.counts):
        if rebuilt_counts.answers < 10:
            continue
        rebuilt_precision = rebuilt_counts.precision
        assert rebuilt_precision is not None
        assert abs(float(rebuilt_precision) - float(original_point.precision)) < 0.25


@given(judged_profiles(), st.integers(min_value=2, max_value=8))
def test_scaling_relevant_scales_counts(profile, factor):
    bare = PRCurve.from_values(
        [(p.recall, p.precision) for p in profile.pr_curve()]
    )
    rebuilt = reconstruct_profile(bare, profile.relevant * factor)
    for original, scaled in zip(profile.counts, rebuilt.counts):
        assert scaled.correct == original.correct * factor
        assert scaled.answers == original.answers * factor

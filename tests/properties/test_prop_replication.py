"""Property test: replicated serving equals single-node replay, always.

For every matcher family, over seeded workloads and interleaved
query/delta streams, a 2-replica :class:`ReplicaGroup` must serve —
from **every** replica, at **every** repository version — answers
byte-identical to a single-node :class:`EvolutionSession` replaying the
same delta sequence.  The group's round-robin front-end must be
invisible: which replica happens to answer can never change a byte.

This is the distributed twin of the service identity property
(``test_service.py``): the replicated delta log, the per-replica digest
checks and the stale-replica refusal exist precisely so this property
cannot fail silently.
"""

from __future__ import annotations

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers.differential import MATCHERS, canonical, make_workload
from repro.matching import EvolutionSession, make_matcher, replica_group
from repro.schema import churn_delta


def _run(coroutine):
    return asyncio.run(coroutine)


@st.composite
def replication_cases(draw):
    repo_seed = draw(st.integers(min_value=0, max_value=20))
    query_seed = draw(st.integers(min_value=0, max_value=20))
    num_queries = draw(st.integers(min_value=1, max_value=2))
    delta_max = draw(st.sampled_from((0.15, 0.3)))
    churn = draw(st.sampled_from((0.2, 0.4)))
    delta_seeds = draw(
        st.lists(
            st.integers(min_value=0, max_value=50), min_size=1, max_size=2
        )
    )
    return repo_seed, query_seed, num_queries, delta_max, churn, delta_seeds


@pytest.mark.parametrize("name,params", MATCHERS)
@settings(max_examples=5, deadline=None)
@given(case=replication_cases())
def test_replicas_equal_single_node_replay(name, params, case):
    repo_seed, query_seed, num_queries, delta_max, churn, delta_seeds = case
    workload = make_workload(
        repo_seed, num_schemas=3, query_seed=query_seed,
        num_queries=num_queries,
    )
    queries = list(workload.queries)

    # Single-node reference: one matcher replaying the delta stream.
    session = EvolutionSession(
        make_matcher(name, workload.objective(), **params),
        queries,
        delta_max,
        cache=False,
    )
    session.match(workload.repository)
    reference = [[canonical(a) for a in session.answer_sets]]
    deltas = []
    for seed in delta_seeds:
        delta = churn_delta(session.repository, churn=churn, seed=seed)
        deltas.append(delta)
        session.apply(delta)
        reference.append([canonical(a) for a in session.answer_sets])

    # Replicated run: same stream, queries interleaved between deltas.
    async def scenario():
        group = replica_group(
            name, workload.objective(), 2, delta_max,
            params=params, cache=False,
        )
        await group.start(workload.repository)
        waves = []
        for step in range(len(deltas) + 1):
            if step:
                await group.apply_delta(deltas[step - 1])
            per_replica = [await group.match_all(q) for q in queries]
            routed = [await group.match(q) for q in queries]
            waves.append((per_replica, routed))
        await group.stop()
        return group, waves

    group, waves = _run(scenario())
    assert group.current_replicas() == [0, 1]
    for (per_replica, routed), expected in zip(waves, reference):
        for query_index in range(len(queries)):
            for replica in range(2):
                observed = canonical(per_replica[query_index][replica])
                assert observed == expected[query_index], (
                    name, query_index, {"replica": replica}
                )
            assert canonical(routed[query_index]) == expected[query_index], (
                name, query_index, "round-robin"
            )


@pytest.mark.parametrize("name,params", MATCHERS)
@settings(max_examples=3, deadline=None)
@given(case=replication_cases())
def test_joining_replica_equals_founders(name, params, case):
    """Runtime membership cannot change a byte.

    A replica joining mid-stream — cold-started on the base repository
    and caught up purely from the replicated log — must end
    byte-identical to the founding replicas *and* to the single-node
    replay, for every matcher family.
    """
    repo_seed, query_seed, num_queries, delta_max, churn, delta_seeds = case
    workload = make_workload(
        repo_seed, num_schemas=3, query_seed=query_seed,
        num_queries=num_queries,
    )
    queries = list(workload.queries)

    session = EvolutionSession(
        make_matcher(name, workload.objective(), **params),
        queries,
        delta_max,
        cache=False,
    )
    session.match(workload.repository)
    deltas = []
    for seed in delta_seeds:
        delta = churn_delta(session.repository, churn=churn, seed=seed)
        deltas.append(delta)
        session.apply(delta)
    expected = [canonical(a) for a in session.answer_sets]

    async def scenario():
        group = replica_group(
            name, workload.objective(), 2, delta_max,
            params=params, cache=False,
        )
        await group.start(workload.repository)
        # the joiner arrives after the first delta: its truth is the
        # base repository plus the log, never a snapshot
        await group.apply_delta(deltas[0])
        joined = await group.join(
            make_matcher(name, workload.objective(), **params)
        )
        for delta in deltas[1:]:
            await group.apply_delta(delta)
        per_replica = [await group.match_all(q) for q in queries]
        await group.stop()
        return group, joined, per_replica

    group, joined, per_replica = _run(scenario())
    assert joined == 2
    assert group.current_replicas() == [0, 1, 2]
    for query_index in range(len(queries)):
        for replica in range(3):
            observed = canonical(per_replica[query_index][replica])
            assert observed == expected[query_index], (
                name, query_index, {"replica": replica}
            )

"""Property test: the similarity substrate never changes an answer set.

For random repositories, queries, matchers and thresholds, matching with
the substrate enabled (precomputed score matrices + exact candidate
pruning) must produce **byte-identical** answer sets to the direct
pre-substrate path — same mappings, same scores, same order.  This is
the substrate's licence to exist: it may only move work, never answers.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matching import make_matcher, substrate_disabled
from repro.matching.objective import ObjectiveFunction
from repro.matching.similarity.name import NameSimilarity, Thesaurus
from repro.schema.generator import GeneratorConfig, generate_repository
from repro.schema.mutations import extract_personal_schema
from repro.schema.vocabulary import builtin_domains
from repro.util import rng

_MATCHERS = [
    ("exhaustive", {}),
    ("beam", {"beam_width": 4}),
    ("clustering", {"clusters_per_element": 2}),
    ("topk", {"candidates_per_element": 3}),
    ("hybrid", {"clusters_per_element": 2, "beam_width": 4}),
]

_THRESHOLDS = (0.05, 0.15, 0.3, 0.45)


@st.composite
def substrate_cases(draw):
    repo_seed = draw(st.integers(min_value=0, max_value=25))
    num_schemas = draw(st.integers(min_value=2, max_value=5))
    query_seed = draw(st.integers(min_value=0, max_value=25))
    matcher = draw(st.sampled_from(_MATCHERS))
    with_thesaurus = draw(st.booleans())
    return repo_seed, num_schemas, query_seed, matcher, with_thesaurus


def _canonical(answer_set) -> bytes:
    return repr(
        [(answer.item.key, answer.score) for answer in answer_set.answers()]
    ).encode()


@settings(max_examples=25, deadline=None)
@given(substrate_cases())
def test_substrate_answer_sets_byte_identical(case):
    repo_seed, num_schemas, query_seed, (name, params), with_thesaurus = case
    repo = generate_repository(
        GeneratorConfig(
            num_schemas=num_schemas, min_size=5, max_size=9, seed=repo_seed
        )
    )
    thesaurus = (
        Thesaurus.from_vocabularies(
            builtin_domains().values(), coverage=0.6, seed=repo_seed
        )
        if with_thesaurus
        else None
    )
    objective = ObjectiveFunction(NameSimilarity(thesaurus))
    query = extract_personal_schema(
        rng.make_tagged(query_seed),
        repo.schemas()[query_seed % num_schemas],
        None,
        target_size=3,
        schema_id="prop-substrate-query",
    )
    for delta in _THRESHOLDS:
        on = make_matcher(name, objective, **params).match(query, repo, delta)
        with substrate_disabled():
            off = make_matcher(name, objective, **params).match(
                query, repo, delta
            )
        assert _canonical(on) == _canonical(off), (name, delta)

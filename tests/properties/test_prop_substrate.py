"""Property test: the similarity substrate never changes an answer set.

For random repositories, queries, matchers and thresholds, matching with
the substrate enabled (precomputed score matrices + exact candidate
pruning) must produce **byte-identical** answer sets to the direct
pre-substrate path — same mappings, same scores, same order.  This is
the substrate's licence to exist: it may only move work, never answers.

The machinery — workload generation, canonical answer encoding, the
toggle runner — lives in :mod:`helpers.differential`; this module pins
the substrate axis of the toggle grid.
"""

from helpers.differential import (
    MATCHERS,
    assert_combinations_identical,
    make_workload,
)
from hypothesis import given, settings
from hypothesis import strategies as st


@st.composite
def substrate_cases(draw):
    repo_seed = draw(st.integers(min_value=0, max_value=25))
    num_schemas = draw(st.integers(min_value=2, max_value=5))
    query_seed = draw(st.integers(min_value=0, max_value=25))
    matcher = draw(st.sampled_from(MATCHERS))
    with_thesaurus = draw(st.booleans())
    return repo_seed, num_schemas, query_seed, matcher, with_thesaurus


@settings(max_examples=25, deadline=None)
@given(substrate_cases())
def test_substrate_answer_sets_byte_identical(case):
    repo_seed, num_schemas, query_seed, (name, params), with_thesaurus = case
    workload = make_workload(
        repo_seed,
        num_schemas=num_schemas,
        query_seed=query_seed,
        with_thesaurus=with_thesaurus,
    )
    assert_combinations_identical(
        name, params, workload, toggles=("substrate",)
    )

"""Property tests for the bound mathematics (the paper's core claims).

The decisive property is **soundness**: for every feasible behaviour of a
non-exhaustive improvement — any subset sizes, any adversarial placement
of the missed answers — the measured true-positive counts lie within the
incremental best/worst bounds at every threshold.  Hypothesis explores
that whole space.
"""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import (
    best_case_correct,
    best_case_precision,
    best_case_recall,
    bound_counts,
    worst_case_correct,
    worst_case_precision,
    worst_case_recall,
)
from repro.core.incremental import (
    compute_incremental_bounds,
    compute_naive_bounds,
)
from repro.core.measures import Counts
from repro.core.random_baseline import expected_correct

from tests.properties.strategies import (
    improvement_scenarios,
    scenario_to_profiles,
)

counts_triples = st.tuples(
    st.integers(min_value=0, max_value=500),  # answers
    st.integers(min_value=0, max_value=500),  # correct (clamped below)
    st.integers(min_value=0, max_value=500),  # improved answers (clamped)
)


@given(counts_triples)
def test_count_bounds_ordered(triple):
    answers, correct_raw, improved_raw = triple
    correct = min(correct_raw, answers)
    improved = min(improved_raw, answers)
    worst = worst_case_correct(answers, correct, improved)
    best = best_case_correct(correct, improved)
    assert 0 <= worst <= best <= improved
    assert best <= correct


@given(counts_triples)
def test_ratio_formulas_agree_with_count_formulas(triple):
    answers, correct_raw, improved_raw = triple
    answers = max(1, answers)
    correct = min(correct_raw, answers)
    improved = min(improved_raw, answers)
    relevant = correct + 7
    original = Counts(answers, correct, relevant)
    bounds = bound_counts(original, improved)
    ratio = Fraction(improved, answers)
    p1 = original.precision
    r1 = original.recall
    if improved > 0:
        assert bounds.best.precision == best_case_precision(p1, ratio)
        assert bounds.worst.precision == worst_case_precision(p1, ratio)
    assert bounds.best.recall == best_case_recall(r1, p1, ratio)
    assert bounds.worst.recall == worst_case_recall(r1, p1, ratio)


@given(counts_triples)
def test_random_expectation_between_bounds(triple):
    answers, correct_raw, improved_raw = triple
    correct = min(correct_raw, answers)
    improved = min(improved_raw, answers)
    expected = expected_correct(answers, correct, improved)
    assert worst_case_correct(answers, correct, improved) <= expected
    assert expected <= best_case_correct(correct, improved)


@settings(max_examples=200)
@given(improvement_scenarios())
def test_soundness_actual_always_inside_incremental_bounds(scenario):
    """The headline theorem: no feasible world escapes the band."""
    increments, kept_sizes, kept_correct, extra_relevant = scenario
    original, improved = scenario_to_profiles(
        increments, kept_sizes, extra_relevant
    )
    bounds = compute_incremental_bounds(original, improved)
    actual_total = 0
    for entry, correct in zip(bounds, kept_correct):
        actual_total += correct
        assert entry.worst.correct <= actual_total <= entry.best.correct


@settings(max_examples=150)
@given(improvement_scenarios())
def test_incremental_never_looser_than_naive(scenario):
    increments, kept_sizes, _kept_correct, extra_relevant = scenario
    original, improved = scenario_to_profiles(
        increments, kept_sizes, extra_relevant
    )
    incremental = compute_incremental_bounds(original, improved)
    naive = compute_naive_bounds(original, improved)
    for i_entry, n_entry in zip(incremental, naive):
        assert i_entry.worst.correct >= n_entry.worst.correct
        assert i_entry.best.correct <= n_entry.best.correct


@settings(max_examples=150)
@given(improvement_scenarios())
def test_random_curve_inside_incremental_bounds(scenario):
    increments, kept_sizes, _kept_correct, extra_relevant = scenario
    original, improved = scenario_to_profiles(
        increments, kept_sizes, extra_relevant
    )
    bounds = compute_incremental_bounds(original, improved)
    for entry in bounds:
        assert entry.worst.correct <= entry.random_correct
        assert entry.random_correct <= entry.best.correct


@settings(max_examples=100)
@given(improvement_scenarios())
def test_full_retention_collapses_bounds(scenario):
    """Â = 1 at every increment => best = worst = original (paper 3.3)."""
    increments, _kept, _correct, extra_relevant = scenario
    full_sizes = [a for a, _t in increments]
    original, improved = scenario_to_profiles(
        increments, full_sizes, extra_relevant
    )
    bounds = compute_incremental_bounds(original, improved)
    for entry, counts in zip(bounds, original.counts):
        assert entry.best.correct == counts.correct
        assert entry.worst.correct == counts.correct


@settings(max_examples=100)
@given(improvement_scenarios())
def test_bounds_monotone_along_thresholds(scenario):
    """Cumulative bound counts never decrease with the threshold."""
    increments, kept_sizes, _correct, extra_relevant = scenario
    original, improved = scenario_to_profiles(
        increments, kept_sizes, extra_relevant
    )
    bounds = compute_incremental_bounds(original, improved)
    previous_best = previous_worst = 0
    for entry in bounds:
        assert entry.best.correct >= previous_best
        assert entry.worst.correct >= previous_worst
        previous_best = entry.best.correct
        previous_worst = entry.worst.correct

"""Property tests: band-comparison verdicts are sound.

Two improvements of the same original system, each with an arbitrary
feasible adversary.  Whenever the comparison declares one provably
better, the realised truths must agree — over every generated world.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.comparison import Verdict, compare_bounds, dominates
from repro.core.incremental import compute_incremental_bounds

from tests.properties.strategies import (
    increment_lists,
    scenario_to_profiles,
)


@st.composite
def paired_scenarios(draw):
    """One original + two independent feasible improvements of it."""
    increments = draw(increment_lists(max_increments=5))
    improvements = []
    for _ in range(2):
        kept_sizes = []
        kept_correct = []
        for answers, correct in increments:
            kept = draw(st.integers(min_value=0, max_value=answers))
            incorrect = answers - correct
            low = max(0, kept - incorrect)
            high = min(correct, kept)
            kept_sizes.append(kept)
            kept_correct.append(draw(st.integers(min_value=low, max_value=high)))
        improvements.append((kept_sizes, kept_correct))
    return increments, improvements


@settings(max_examples=150)
@given(paired_scenarios())
def test_verdicts_never_contradicted(scenario):
    increments, improvements = scenario
    original, first_sizes = scenario_to_profiles(
        increments, improvements[0][0], extra_relevant=5
    )
    _, second_sizes = scenario_to_profiles(
        increments, improvements[1][0], extra_relevant=5
    )
    first = compute_incremental_bounds(original, first_sizes)
    second = compute_incremental_bounds(original, second_sizes)
    comparisons = compare_bounds(first, second)

    first_total = 0
    second_total = 0
    for comparison, first_correct, second_correct in zip(
        comparisons, improvements[0][1], improvements[1][1]
    ):
        first_total += first_correct
        second_total += second_correct
        if comparison.correct_verdict is Verdict.FIRST_BETTER:
            assert first_total >= second_total
        elif comparison.correct_verdict is Verdict.SECOND_BETTER:
            assert second_total >= first_total


@settings(max_examples=100)
@given(paired_scenarios())
def test_dominance_implies_strictly_more_truth(scenario):
    increments, improvements = scenario
    original, first_sizes = scenario_to_profiles(
        increments, improvements[0][0], extra_relevant=5
    )
    _, second_sizes = scenario_to_profiles(
        increments, improvements[1][0], extra_relevant=5
    )
    first = compute_incremental_bounds(original, first_sizes)
    second = compute_incremental_bounds(original, second_sizes)
    if dominates(first, second):
        first_total = 0
        second_total = 0
        for first_correct, second_correct in zip(
            improvements[0][1], improvements[1][1]
        ):
            first_total += first_correct
            second_total += second_correct
            assert first_total > second_total


@settings(max_examples=80)
@given(paired_scenarios())
def test_comparison_antisymmetric(scenario):
    increments, improvements = scenario
    original, first_sizes = scenario_to_profiles(
        increments, improvements[0][0], extra_relevant=5
    )
    _, second_sizes = scenario_to_profiles(
        increments, improvements[1][0], extra_relevant=5
    )
    first = compute_incremental_bounds(original, first_sizes)
    second = compute_incremental_bounds(original, second_sizes)
    forward = compare_bounds(first, second)
    backward = compare_bounds(second, first)
    for f, b in zip(forward, backward):
        if f.correct_verdict is Verdict.UNDECIDED:
            assert b.correct_verdict is Verdict.UNDECIDED

"""End-to-end integration: the full paper pipeline on the small workload.

Covers the complete flow the paper describes — generate, match, derive
bounds, validate — plus the random-system empirical check of section 3.4.
"""

from fractions import Fraction

from repro.core.bands import EffectivenessBand
from repro.core.incremental import SystemProfile, compute_incremental_bounds
from repro.evaluation.validation import validate_improvement
from repro.matching.random_matcher import (
    best_case_subset,
    random_subset_like,
    worst_case_subset,
)


class TestFullPipeline:
    def test_improvements_contained(self, original_run, improvement_runs):
        for name, run in improvement_runs.items():
            validation = validate_improvement(original_run, run)
            assert validation.sound, name

    def test_guarantees_are_honest(
        self, original_run, improvement_runs, small_workload
    ):
        """Any guarantee the band issues must hold for the true system."""
        relevant = small_workload.relevant_size
        for run in improvement_runs.values():
            validation = validate_improvement(original_run, run)
            guaranteed = validation.band.guaranteed_recall_at_precision(
                Fraction(1, 2)
            )
            # thresholds backing the guarantee must satisfy it in truth
            for entry, actual in zip(validation.bounds, run.profile.counts):
                worst_p = entry.worst.precision_or(Fraction(0))
                if worst_p >= Fraction(1, 2):
                    actual_p = actual.precision_or(Fraction(1))
                    assert actual_p >= Fraction(1, 2)
            if guaranteed > 0:
                best_true_recall = max(
                    Fraction(c.correct, relevant) for c in run.profile.counts
                )
                assert best_true_recall >= guaranteed

    def test_max_loss_guarantee_honest(self, original_run, improvement_runs):
        for run in improvement_runs.values():
            validation = validate_improvement(original_run, run)
            promised = validation.band.max_effectiveness_loss()
            t1 = original_run.profile.final_counts().correct
            t2 = run.profile.final_counts().correct
            true_loss = 1 - Fraction(t2, t1)
            assert true_loss <= promised


class TestRandomSystemEmpirically:
    """Section 3.4's S_random, actually run and judged."""

    def test_random_runs_contained_in_band(
        self, small_workload, original_run, beam_run
    ):
        truth = small_workload.suite.ground_truth.mappings
        schedule = small_workload.schedule
        validation = validate_improvement(original_run, beam_run)
        for seed in range(5):
            subset = random_subset_like(
                original_run.answers, schedule, list(beam_run.sizes.sizes), seed
            )
            profile = SystemProfile.from_answer_set(schedule, subset, truth)
            report = validation.band.check_containment(profile)
            assert report.all_contained, f"seed {seed}"

    def test_random_runs_average_near_random_curve(
        self, small_workload, original_run, beam_run
    ):
        truth = small_workload.suite.ground_truth.mappings
        schedule = small_workload.schedule
        bounds = compute_incremental_bounds(original_run.profile, beam_run.sizes)
        final_expected = float(bounds[len(bounds) - 1].random_correct)
        samples = []
        for seed in range(20):
            subset = random_subset_like(
                original_run.answers, schedule, list(beam_run.sizes.sizes), seed
            )
            profile = SystemProfile.from_answer_set(schedule, subset, truth)
            samples.append(profile.final_counts().correct)
        mean = sum(samples) / len(samples)
        assert abs(mean - final_expected) <= max(3.0, 0.25 * final_expected)

    def test_adversarial_subsets_attain_bounds(
        self, small_workload, original_run, beam_run
    ):
        truth = small_workload.suite.ground_truth.mappings
        schedule = small_workload.schedule
        bounds = compute_incremental_bounds(original_run.profile, beam_run.sizes)
        worst = worst_case_subset(
            original_run.answers, schedule, list(beam_run.sizes.sizes), truth
        )
        best = best_case_subset(
            original_run.answers, schedule, list(beam_run.sizes.sizes), truth
        )
        worst_profile = SystemProfile.from_answer_set(schedule, worst, truth)
        best_profile = SystemProfile.from_answer_set(schedule, best, truth)
        for entry, wc, bc in zip(
            bounds, worst_profile.counts, best_profile.counts
        ):
            assert wc.correct == entry.worst.correct
            assert bc.correct == entry.best.correct


class TestCrossFigureConsistency:
    def test_band_width_zero_iff_full_ratio(self, original_run):
        validation = validate_improvement(original_run, original_run)
        band = EffectivenessBand(validation.bounds)
        assert band.mean_precision_width() == 0

"""Cross-check: the paper's P/R-space equations against count space.

The library computes everything from counts; the paper states its
formulas over precision/recall values.  On the real (small-workload)
profile the two views must agree exactly — Equations 7/8 for increments,
Equations 2/3/5/6 for the bounds — threshold by threshold.
"""

from fractions import Fraction

from repro.core.bounds import (
    best_case_precision,
    best_case_recall,
    worst_case_precision,
    worst_case_recall,
)
from repro.core.increments import (
    IncrementPR,
    combine_increment_pr,
    increment_precision,
    increment_recall,
)
from repro.evaluation.validation import validate_improvement


class TestEquations78OnRealProfile:
    def test_increment_precision_matches_counts(self, original_run):
        profile = original_run.profile
        counts = profile.counts
        increments = profile.increments()
        previous_r, previous_p = Fraction(0), Fraction(1)
        for count, increment in zip(counts, increments):
            r = count.recall
            p = count.precision_or(Fraction(1))
            eq7 = increment_precision(previous_r, previous_p, r, p)
            if increment.answers == 0:
                assert eq7 is None
            else:
                assert eq7 == Fraction(increment.correct, increment.answers)
            assert increment_recall(previous_r, r) == (
                Fraction(increment.correct, profile.relevant)
            )
            previous_r, previous_p = r, p

    def test_step4_recombination_matches_thresholds(self, original_run):
        profile = original_run.profile
        counts = profile.counts
        increments = profile.increments()
        r, p = Fraction(0), Fraction(1)
        for count, increment in zip(counts, increments):
            if increment.answers == 0:
                # paper's special case: keep the previous point
                continue
            inc_pr = IncrementPR(
                recall=Fraction(increment.correct, profile.relevant),
                precision=Fraction(increment.correct, increment.answers),
            )
            r, p = combine_increment_pr(r, p, inc_pr)
            assert r == count.recall
            assert p == count.precision_or(Fraction(1))


class TestEquations2356OnRealBounds:
    def test_ratio_space_matches_count_space(self, original_run, beam_run):
        validation = validate_improvement(original_run, beam_run)
        # naive (single-increment) bounds are where Eq 2/3/5/6 apply verbatim
        from repro.core.incremental import compute_naive_bounds

        naive = compute_naive_bounds(original_run.profile, beam_run.sizes)
        for entry in naive:
            if entry.improved_answers == 0 or entry.original.answers == 0:
                continue
            ratio = entry.size_ratio
            p1 = entry.original.precision_or(Fraction(1))
            r1 = entry.original.recall
            assert entry.best.precision == best_case_precision(p1, ratio)
            assert entry.worst.precision == worst_case_precision(p1, ratio)
            assert entry.best.recall == best_case_recall(r1, p1, ratio)
            assert entry.worst.recall == worst_case_recall(r1, p1, ratio)
        # and the incremental bounds can only be tighter
        for naive_entry, incremental_entry in zip(naive, validation.bounds):
            assert incremental_entry.worst.correct >= naive_entry.worst.correct
            assert incremental_entry.best.correct <= naive_entry.best.correct

"""Test subpackage."""

"""Unit tests for Fraction helpers."""

from fractions import Fraction

import pytest

from repro.util.fractions_ext import (
    as_fraction,
    clamp01,
    format_fraction,
    frac_max,
    frac_min,
    safe_ratio,
)


class TestAsFraction:
    def test_int(self):
        assert as_fraction(3) == Fraction(3)

    def test_fraction_passthrough(self):
        assert as_fraction(Fraction(2, 7)) == Fraction(2, 7)

    def test_float_exact(self):
        assert as_fraction(0.5) == Fraction(1, 2)

    def test_float_snapped(self):
        assert as_fraction(0.1, max_denominator=1000) == Fraction(1, 10)

    def test_rejects_strings(self):
        with pytest.raises(TypeError):
            as_fraction("0.5")  # type: ignore[arg-type]

    def test_bool_is_rational(self):
        # bool is an int subclass; document the (harmless) behaviour
        assert as_fraction(True) == Fraction(1)


class TestSafeRatio:
    def test_normal_division(self):
        assert safe_ratio(3, 4) == Fraction(3, 4)

    def test_zero_denominator_default(self):
        assert safe_ratio(3, 0) == Fraction(0)

    def test_zero_denominator_custom_default(self):
        assert safe_ratio(3, 0, default=Fraction(1)) == Fraction(1)

    def test_mixed_types(self):
        assert safe_ratio(0.5, 2) == Fraction(1, 4)


class TestClamp:
    def test_below(self):
        assert clamp01(Fraction(-1, 2)) == Fraction(0)

    def test_above(self):
        assert clamp01(Fraction(3, 2)) == Fraction(1)

    def test_inside(self):
        assert clamp01(Fraction(1, 3)) == Fraction(1, 3)


class TestMinMax:
    def test_min_mixed(self):
        assert frac_min(1, 0.25, Fraction(1, 3)) == Fraction(1, 4)

    def test_max_mixed(self):
        assert frac_max(0, Fraction(7, 8), 0.5) == Fraction(7, 8)


class TestFormat:
    def test_integer_fraction(self):
        assert format_fraction(Fraction(4, 2)) == "2"

    def test_proper_fraction(self):
        assert format_fraction(Fraction(7, 32)) == "7/32 (0.2188)"

    def test_digits(self):
        assert format_fraction(Fraction(1, 3), digits=2) == "1/3 (0.33)"

"""Unit tests for text-table rendering."""

import pytest

from repro.util.tables import format_csv, format_kv, format_table


class TestFormatTable:
    def test_basic_alignment(self):
        out = format_table(["name", "n"], [("alpha", 1), ("b", 22)])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert lines[1].startswith("-")
        # numeric column is right-aligned
        assert lines[2].endswith("1")
        assert lines[3].endswith("22")

    def test_title_line(self):
        out = format_table(["a"], [(1,)], title="My table")
        assert out.splitlines()[0] == "My table"

    def test_float_formatting(self):
        out = format_table(["x"], [(0.123456,)], float_digits=2)
        assert "0.12" in out

    def test_none_renders_dash(self):
        out = format_table(["x"], [(None,)])
        assert "-" in out.splitlines()[-1]

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [(1,)])

    def test_fraction_like_cells_right_aligned(self):
        out = format_table(["value"], [("7/32",), ("100/333",)])
        assert out.splitlines()[-1].endswith("100/333")

    def test_empty_rows_ok(self):
        out = format_table(["a", "b"], [])
        assert len(out.splitlines()) == 2  # header + rule


class TestFormatKv:
    def test_alignment(self):
        out = format_kv([("short", 1), ("a-much-longer-key", 2)])
        lines = out.splitlines()
        assert lines[0].index(":") == lines[1].index(":")

    def test_empty(self):
        assert format_kv([]) == ""


class TestFormatCsv:
    def test_header_and_rows(self):
        out = format_csv(["a", "b"], [(1, 2.5)])
        assert out.splitlines()[0] == "a,b"
        assert out.splitlines()[1] == "1,2.500000"

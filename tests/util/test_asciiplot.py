"""Unit tests for the ASCII plot renderer."""

import pytest

from repro.util.asciiplot import AsciiPlot, Series


class TestSeries:
    def test_marker_must_be_single_char(self):
        with pytest.raises(ValueError):
            Series("s", [(0, 0)], marker="ab")


class TestAsciiPlot:
    def test_render_contains_title_and_legend(self):
        plot = AsciiPlot(width=20, height=6, title="demo")
        plot.add(Series("mine", [(0.0, 0.0), (1.0, 1.0)], marker="o"))
        out = plot.render()
        assert "demo" in out
        assert "[o] mine" in out

    def test_corners_are_plotted(self):
        plot = AsciiPlot(width=20, height=6, x_range=(0, 1), y_range=(0, 1))
        plot.add(Series("s", [(0.0, 1.0), (1.0, 0.0)], marker="*"))
        lines = plot.render().splitlines()
        # top-left corner: first grid row starts with the marker
        first_grid = lines[0].split("|", 1)[1]
        assert first_grid[0] == "*"

    def test_out_of_range_points_dropped(self):
        plot = AsciiPlot(width=20, height=6, x_range=(0, 1), y_range=(0, 1))
        plot.add(Series("s", [(5.0, 5.0)], marker="#"))
        grid_lines = [
            line for line in plot.render().splitlines() if "|" in line
        ]
        assert all("#" not in line for line in grid_lines)

    def test_too_small_canvas_rejected(self):
        plot = AsciiPlot(width=4, height=2)
        plot.add(Series("s", [(0, 0)]))
        with pytest.raises(ValueError):
            plot.render()

    def test_empty_plot_renders(self):
        out = AsciiPlot(width=12, height=4).render()
        assert "+" in out  # axis present

    def test_autoscaling_from_data(self):
        plot = AsciiPlot(width=20, height=6)
        plot.add(Series("s", [(10.0, 100.0), (20.0, 200.0)], marker="x"))
        out = plot.render()
        assert "200.00" in out
        assert "10.00" in out

    def test_add_returns_self_for_chaining(self):
        plot = AsciiPlot(width=12, height=4)
        assert plot.add(Series("s", [(0, 0)])) is plot

    def test_degenerate_range_padded(self):
        plot = AsciiPlot(width=12, height=4)
        plot.add(Series("s", [(0.5, 0.5)], marker="o"))
        assert "o" in plot.render()

"""Unit tests for the statistics helpers."""

from fractions import Fraction

import pytest

from repro.util.stats import kendall_tau, mean, median, variance


class TestBasics:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_mean_empty_rejected(self):
        with pytest.raises(ValueError):
            mean([])

    def test_median_odd(self):
        assert median([3.0, 1.0, 2.0]) == 2.0

    def test_median_even(self):
        assert median([4.0, 1.0, 2.0, 3.0]) == 2.5

    def test_median_empty_rejected(self):
        with pytest.raises(ValueError):
            median([])

    def test_variance(self):
        assert variance([1.0, 1.0, 1.0]) == 0.0
        assert variance([0.0, 2.0]) == 1.0

    def test_variance_empty_rejected(self):
        with pytest.raises(ValueError):
            variance([])


class TestKendallTau:
    def test_perfect_agreement(self):
        assert kendall_tau([1, 2, 3, 4], [10, 20, 30, 40]) == Fraction(1)

    def test_perfect_disagreement(self):
        assert kendall_tau([1, 2, 3], [3, 2, 1]) == Fraction(-1)

    def test_independent_orderings(self):
        tau = kendall_tau([1, 2, 3, 4], [2, 1, 4, 3])
        assert -1 < tau < 1

    def test_ties_neither_concordant_nor_discordant(self):
        tau = kendall_tau([1, 1, 2], [1, 2, 3])
        # pairs: (1,1)-(1,2) tie in a; (1,1)-(2,3) concordant; (1,2)-(2,3) concordant
        assert tau == Fraction(2, 3)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            kendall_tau([1], [1, 2])

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            kendall_tau([1], [1])

    def test_symmetric(self):
        a = [3.0, 1.0, 4.0, 1.5, 5.0]
        b = [2.0, 0.5, 4.5, 1.0, 3.0]
        assert kendall_tau(a, b) == kendall_tau(b, a)

"""Unit tests for deterministic RNG derivation."""

import pytest

from repro.util import rng


class TestSeedFrom:
    def test_deterministic(self):
        assert rng.seed_from(1, "a", 2) == rng.seed_from(1, "a", 2)

    def test_distinct_labels_distinct_seeds(self):
        assert rng.seed_from(1, "a") != rng.seed_from(1, "b")

    def test_distinct_bases_distinct_seeds(self):
        assert rng.seed_from(1, "a") != rng.seed_from(2, "a")

    def test_label_path_not_concatenation(self):
        # ("ab",) and ("a", "b") must differ (separator in the hash)
        assert rng.seed_from(1, "ab") != rng.seed_from(1, "a", "b")


class TestDerive:
    def test_derivation_is_order_independent(self):
        root1 = rng.make_tagged(42)
        a_first = rng.derive(root1, "a").random()
        root2 = rng.make_tagged(42)
        rng.derive(root2, "b")  # deriving b first must not disturb a
        a_second = rng.derive(root2, "a").random()
        assert a_first == a_second

    def test_children_are_independent_streams(self):
        root = rng.make_tagged(42)
        a = rng.derive(root, "a")
        b = rng.derive(root, "b")
        assert [a.random() for _ in range(3)] != [b.random() for _ in range(3)]

    def test_nested_derivation(self):
        root = rng.make_tagged(7)
        child = rng.derive(root, "x")
        grandchild1 = rng.derive(child, "y").random()
        grandchild2 = rng.derive(rng.derive(rng.make_tagged(7), "x"), "y").random()
        assert grandchild1 == grandchild2

    def test_untagged_parent_still_works(self):
        import random

        parent = random.Random(3)
        child = rng.derive(parent, "z")
        assert 0.0 <= child.random() <= 1.0


class TestChoiceWeighted:
    def test_single_item(self):
        generator = rng.make(1)
        assert rng.choice_weighted(generator, ["x"], [1.0]) == "x"

    def test_zero_weight_never_chosen(self):
        generator = rng.make(5)
        picks = {
            rng.choice_weighted(generator, ["a", "b"], [0.0, 1.0])
            for _ in range(50)
        }
        assert picks == {"b"}

    def test_empty_items_rejected(self):
        with pytest.raises(ValueError):
            rng.choice_weighted(rng.make(1), [], [])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            rng.choice_weighted(rng.make(1), ["a"], [1.0, 2.0])

    def test_non_positive_weights_rejected(self):
        with pytest.raises(ValueError):
            rng.choice_weighted(rng.make(1), ["a", "b"], [0.0, 0.0])


class TestSampleFraction:
    def test_full_fraction_returns_all(self):
        out = rng.sample_fraction(rng.make(1), list(range(10)), 1.0)
        assert sorted(out) == list(range(10))

    def test_zero_fraction_returns_none(self):
        assert rng.sample_fraction(rng.make(1), list(range(10)), 0.0) == []

    def test_fraction_clamped(self):
        out = rng.sample_fraction(rng.make(1), list(range(4)), 2.0)
        assert sorted(out) == [0, 1, 2, 3]

    def test_half_fraction_size(self):
        out = rng.sample_fraction(rng.make(1), list(range(10)), 0.5)
        assert len(out) == 5

"""Unit tests for the from-scratch string similarity functions."""

import pytest

from repro.util.text import (
    character_ngrams,
    dice_coefficient,
    jaccard,
    jaro,
    jaro_winkler,
    levenshtein,
    levenshtein_similarity,
    longest_common_prefix,
    ngram_profile,
    ngram_similarity,
    normalise_label,
    prefix_similarity,
    token_set_similarity,
    tokenize_label,
)


class TestNormaliseLabel:
    def test_camel_case_split(self):
        assert normalise_label("lastName") == "last name"

    def test_acronym_boundary(self):
        assert normalise_label("ISBNNumber") == "isbn number"

    def test_punctuation_to_spaces(self):
        assert normalise_label("last_name-of.author") == "last name of author"

    def test_collapses_whitespace(self):
        assert normalise_label("  a   b  ") == "a b"

    def test_empty(self):
        assert normalise_label("") == ""

    def test_only_punctuation(self):
        assert normalise_label("___") == ""

    def test_digits_preserved(self):
        assert normalise_label("address2") == "address2"


class TestTokenize:
    def test_tokens(self):
        assert tokenize_label("orderLineItem") == ["order", "line", "item"]

    def test_empty_label(self):
        assert tokenize_label("--") == []


class TestLevenshtein:
    def test_identical(self):
        assert levenshtein("author", "author") == 0

    def test_empty_vs_word(self):
        assert levenshtein("", "abc") == 3

    def test_both_empty(self):
        assert levenshtein("", "") == 0

    def test_single_substitution(self):
        assert levenshtein("cat", "cut") == 1

    def test_insertion(self):
        assert levenshtein("cat", "cart") == 1

    def test_deletion(self):
        assert levenshtein("cart", "cat") == 1

    def test_classic_example(self):
        assert levenshtein("kitten", "sitting") == 3

    def test_symmetric(self):
        assert levenshtein("abcdef", "azced") == levenshtein("azced", "abcdef")

    def test_similarity_identical(self):
        assert levenshtein_similarity("x", "x") == 1.0

    def test_similarity_disjoint(self):
        assert levenshtein_similarity("abc", "xyz") == 0.0

    def test_similarity_empty_pair(self):
        assert levenshtein_similarity("", "") == 1.0


class TestJaro:
    def test_identical(self):
        assert jaro("martha", "martha") == 1.0

    def test_empty_one_side(self):
        assert jaro("", "abc") == 0.0

    def test_known_value_martha_marhta(self):
        assert jaro("martha", "marhta") == pytest.approx(0.9444, abs=1e-3)

    def test_known_value_dixon_dicksonx(self):
        assert jaro("dixon", "dicksonx") == pytest.approx(0.7667, abs=1e-3)

    def test_no_common_characters(self):
        assert jaro("abc", "xyz") == 0.0

    def test_symmetric(self):
        assert jaro("dwayne", "duane") == jaro("duane", "dwayne")


class TestJaroWinkler:
    def test_prefix_boost(self):
        assert jaro_winkler("prefix", "prefixx") > jaro("prefix", "prefixx")

    def test_known_value(self):
        assert jaro_winkler("martha", "marhta") == pytest.approx(0.9611, abs=1e-3)

    def test_prefix_capped_at_four(self):
        # identical 10-char prefix must not overflow past 1.0
        assert jaro_winkler("abcdefghij", "abcdefghijk") <= 1.0

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            jaro_winkler("a", "b", prefix_scale=0.5)

    def test_range(self):
        assert 0.0 <= jaro_winkler("alpha", "omega") <= 1.0


class TestNgrams:
    def test_padded_count(self):
        grams = character_ngrams("ab", n=3)
        # '##a', '#ab', 'ab#', 'b##'
        assert grams == ["##a", "#ab", "ab#", "b##"]

    def test_unpadded(self):
        assert character_ngrams("abcd", n=2, pad=False) == ["ab", "bc", "cd"]

    def test_empty_string(self):
        assert character_ngrams("", n=3, pad=False) == []

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            character_ngrams("abc", n=0)

    def test_profile_is_multiset(self):
        profile = ngram_profile("aaa", n=1)
        assert profile["a"] == 3

    def test_similarity_identical(self):
        assert ngram_similarity("database", "database") == 1.0

    def test_similarity_disjoint(self):
        assert ngram_similarity("abc", "xyz") == 0.0

    def test_similarity_partial(self):
        value = ngram_similarity("author", "authors")
        assert 0.5 < value < 1.0


class TestSetSimilarities:
    def test_dice_both_empty(self):
        from collections import Counter

        assert dice_coefficient(Counter(), Counter()) == 1.0

    def test_dice_one_empty(self):
        from collections import Counter

        assert dice_coefficient(Counter("abc"), Counter()) == 0.0

    def test_jaccard_identical(self):
        assert jaccard({"a", "b"}, {"a", "b"}) == 1.0

    def test_jaccard_disjoint(self):
        assert jaccard({"a"}, {"b"}) == 0.0

    def test_jaccard_both_empty(self):
        assert jaccard(set(), set()) == 1.0

    def test_token_set_shared_word(self):
        assert token_set_similarity("first name", "name") == pytest.approx(0.5)

    def test_token_set_style_invariant(self):
        assert token_set_similarity("lastName", "last_name") == 1.0


class TestPrefix:
    def test_common_prefix_length(self):
        assert longest_common_prefix("order", "orders") == 5

    def test_no_common_prefix(self):
        assert longest_common_prefix("abc", "xbc") == 0

    def test_prefix_similarity_range(self):
        assert prefix_similarity("ab", "abcd") == pytest.approx(0.5)

    def test_prefix_similarity_empty(self):
        assert prefix_similarity("", "") == 1.0

"""Unit tests for validation helpers."""

import pytest

from repro.util.checks import (
    check_non_negative,
    check_positive,
    check_probability,
    check_strictly_increasing,
    require,
)


class TestRequire:
    def test_passes_silently(self):
        require(True, "never raised")

    def test_raises_value_error_by_default(self):
        with pytest.raises(ValueError, match="boom"):
            require(False, "boom")

    def test_custom_error_type(self):
        with pytest.raises(KeyError):
            require(False, "missing", error=KeyError)


class TestProbability:
    def test_bounds_inclusive(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0

    def test_out_of_range(self):
        with pytest.raises(ValueError, match="p must be within"):
            check_probability(1.5, "p")


class TestPositive:
    def test_positive_ok(self):
        assert check_positive(0.1, "x") == 0.1

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            check_positive(0, "x")


class TestNonNegative:
    def test_zero_ok(self):
        assert check_non_negative(0, "x") == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            check_non_negative(-1, "x")


class TestStrictlyIncreasing:
    def test_valid_sequence(self):
        assert check_strictly_increasing([1, 2, 3], "xs") == [1, 2, 3]

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="must not be empty"):
            check_strictly_increasing([], "xs")

    def test_equal_neighbours_rejected(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            check_strictly_increasing([1, 1], "xs")

    def test_decreasing_rejected(self):
        with pytest.raises(ValueError):
            check_strictly_increasing([2, 1], "xs")

"""Test subpackage."""

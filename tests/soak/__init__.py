"""The chaos soak suite: long seeded fault schedules over the full stack."""

"""The soak suite entry points: smoke grid, seed replay, nightly long run.

Three gears, all over :mod:`soak.harness`:

* **smoke** (tier-1, always on) — a fixed grid of seeds at smoke
  length (:data:`SMOKE_WAVES` waves).  Deterministic, minutes not
  hours; the PR gate that every replica stays byte-identical to the
  single-node replay under randomized fault schedules.
* **replay** (``--soak-seed N [--soak-waves W]``) — exactly one
  schedule, no shrinking: the one-command repro a failing run prints.
* **long** (``--soak-schedules N``) — the nightly CI gear: N fresh
  schedules at long length, failing schedules' event logs appended to
  ``--soak-log`` for the artifact upload.
"""

from __future__ import annotations

import pytest

from soak.harness import SoakFailure, run_schedule, run_with_shrink

pytestmark = [pytest.mark.soak, pytest.mark.network]

SMOKE_SEEDS = range(20)
SMOKE_WAVES = 3
LONG_WAVES = 8
#: the long-soak seed base keeps nightly schedules disjoint from smoke
LONG_SEED_BASE = 100_000

#: non-default matcher families the smoke also drags through a schedule
FAMILY_CASES = [
    ("beam", {"beam_width": 4}),
    ("clustering", {"clusters_per_element": 2}),
]


def _skip_if_explicit_run(config) -> None:
    """Smoke steps aside when the user asked for a replay or a long soak."""
    if config.getoption("--soak-seed") is not None:
        pytest.skip("replaying one schedule (--soak-seed); smoke grid off")
    if config.getoption("--soak-schedules") is not None:
        pytest.skip("long soak requested (--soak-schedules); smoke grid off")


def _run_logged(config, runner, seed: int, waves: int, **kwargs):
    """Run one schedule, appending its event log to --soak-log on failure."""
    lines: list[str] = []
    try:
        return runner(seed, waves, log=lines.append, **kwargs)
    except SoakFailure:
        path = config.getoption("--soak-log")
        if path:
            with open(path, "a", encoding="utf-8") as handle:
                handle.write(f"=== schedule seed={seed} waves={waves} ===\n")
                handle.writelines(line + "\n" for line in lines)
        raise


class TestSoakSmoke:
    """The tier-1 gate: fixed seeds, smoke length, shrink on failure."""

    @pytest.mark.parametrize("seed", SMOKE_SEEDS)
    def test_schedule(self, pytestconfig, seed):
        _skip_if_explicit_run(pytestconfig)
        waves = pytestconfig.getoption("--soak-waves") or SMOKE_WAVES
        report = _run_logged(
            pytestconfig, run_with_shrink, seed, waves
        )
        assert report.ops >= 2 * waves
        # the barrier audits every replica against the replay each
        # wave, so a completed schedule always served queries
        assert report.queries_served >= 2 * waves

    @pytest.mark.parametrize("name,params", FAMILY_CASES)
    def test_other_families(self, pytestconfig, name, params):
        _skip_if_explicit_run(pytestconfig)
        waves = pytestconfig.getoption("--soak-waves") or SMOKE_WAVES
        report = _run_logged(
            pytestconfig,
            run_with_shrink,
            7,  # one fixed seed per non-default family
            waves,
            matcher=name,
            params=params,
        )
        assert report.queries_served >= 2 * waves


class TestSoakReplay:
    """``--soak-seed``: rerun exactly the schedule a failure printed."""

    def test_replay(self, pytestconfig):
        seed = pytestconfig.getoption("--soak-seed")
        if seed is None:
            pytest.skip("no --soak-seed given")
        waves = pytestconfig.getoption("--soak-waves") or SMOKE_WAVES
        report = _run_logged(pytestconfig, run_schedule, seed, waves)
        assert report.waves == waves


class TestSoakLong:
    """``--soak-schedules N``: the nightly randomized long soak."""

    def test_long_soak(self, pytestconfig):
        count = pytestconfig.getoption("--soak-schedules")
        if count is None:
            pytest.skip("no --soak-schedules given (nightly CI gear)")
        waves = pytestconfig.getoption("--soak-waves") or LONG_WAVES
        for seed in range(LONG_SEED_BASE, LONG_SEED_BASE + count):
            _run_logged(pytestconfig, run_with_shrink, seed, waves)


def test_marker_discipline():
    """The soak suite must carry both gate markers.

    ``network`` keeps it out of REPRO_NO_NETWORK=1 sandboxes (every
    schedule opens loopback sockets); ``soak`` lets CI and developers
    select or deselect the whole chaos tier with ``-m``.
    """
    assert {"soak", "network"} <= {mark.name for mark in pytestmark}

"""The chaos soak harness: seeded random fault schedules, end to end.

One *schedule* is a deterministic function of its integer ``seed``: a
tiny generated workload, a :class:`~repro.matching.replication
.ReplicaGroup` whose replica pipelines fan out through a shared
:class:`~repro.matching.remote.RemoteShardExecutor` over live
:class:`~repro.matching.remote.WorkerServer` processes-in-threads
(``parallel_units=2`` each), and ``waves`` rounds of randomly
interleaved operations drawn from the full fault surface of PR 8's
primitives:

* **queries** round-robined through the group (answers checked against
  a single-node :class:`~repro.matching.evolution.EvolutionSession`
  replay the moment they arrive);
* **deltas** through the replicated log, optionally with scripted
  delivery faults (:class:`helpers.faults.DeltaLogFaults` drops,
  duplicates, holds);
* **worker kills and restarts** mid-schedule (the executor's address
  list mutates live);
* **frame tampering** (:class:`helpers.faults.TamperProxy` with byte
  flips and stream cuts spliced in front of one worker for one query);
* **latency and partitions** (:class:`helpers.faults.DelayProxy` slows
  a worker's wire; a ``stall_after`` relay hangs it silently — no EOF —
  so only the executor's :class:`~repro.matching.remote.DeadlineBudget`
  deadlines can unblock the sweep);
* **slow replica delivery** (scripted :attr:`DeltaLogFaults.delay`
  past the group's ``settle_timeout`` backpressures the replica into
  the *lagging* state instead of stalling ``apply_delta``);
* **membership changes** (replicas ``join()`` via log replay and
  ``leave()`` without draining, mid-stream);
* **catch-ups** at random moments.

After every wave, a **barrier** heals the cluster (held deliveries
released, a worker restarted if none is live, every replica caught up)
and audits both halves of the contract.  *Safety*: every live replica
is byte-identical to the single-node replay, and every fault surfaced
as :class:`~repro.errors.TransportError`/:class:`~repro.errors
.ReplicationError` — never a wrong answer.  *Recovery*: once faults
clear, every live worker passes a health probe and its circuit breaker
closes, every lagging replica catches up to serving, and the whole
wave — ops plus barrier — lands inside a wall-clock bound, which is
what proves no remote op ever blocked past its deadline.

Determinism and replay: wave *w* draws from ``random.Random(f"{seed}:
{w}")``, and everything that feeds later draws (the delta log, the
membership count, the worker roster) evolves deterministically even
when faults fire, so a schedule of fewer waves is an exact prefix.
:func:`run_with_shrink` exploits that to report the minimal failing
wave count; every :class:`SoakFailure` message carries the one-command
repro (``--soak-seed``/``--soak-waves``).
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Callable

from helpers.differential import canonical, make_workload
from helpers.faults import (
    DelayProxy,
    DeltaLogFaults,
    TamperProxy,
    cut_after,
    flip_byte,
)
from repro.errors import ReplicationError, TransportError
from repro.matching import (
    DeadlineBudget,
    EvolutionSession,
    RemoteShardExecutor,
    WorkerServer,
    make_matcher,
    replica_group,
)
from repro.schema.delta import churn_delta

__all__ = [
    "SoakFailure",
    "SoakReport",
    "repro_command",
    "run_schedule",
    "run_with_shrink",
]

#: the faults the stack is *required* to surface; anything else
#: escaping a schedule fails it with a printed repro
LOUD = (TransportError, ReplicationError)

#: replicas a schedule may grow to via join()
MAX_REPLICAS = 4

#: the threshold every schedule serves under
DELTA_MAX = 0.3

#: fresh queries held back for tamper/latency/stall ops (each
#: guarantees remote traffic)
PROBE_QUERIES = 6

#: weighted operation palette (queries and deltas dominate, as in life)
OPS = (
    "query", "query", "query",
    "delta", "delta_fault",
    "tamper", "latency", "stall",
    "kill", "restart",
    "join", "leave", "catch_up",
)

#: per-op deadlines every schedule's executor runs under — small enough
#: that a stalled (hung, not crashed) worker costs seconds, not a hang
DEADLINES = DeadlineBudget(connect=2.0, hello=1.0, install=5.0, run=5.0)

#: records a replica's delivery queue may hold before it is lagged out
MAX_LAG = 2

#: how long ``apply_delta`` waits for deliveries before lagging a replica
SETTLE_TIMEOUT = 1.0

#: scripted delivery delays: the short one drains inside the settle,
#: the long one exceeds SETTLE_TIMEOUT and must lag the replica
DELIVERY_DELAYS = (0.05, 2.5)

#: the per-wave wall-clock bound (ops + barrier).  Generous against the
#: op deadlines above, impossible if anything blocks without one: a
#: single un-deadlined stalled socket used to hang a sweep forever.
WAVE_DEADLINE = 60.0


class SoakFailure(AssertionError):
    """A schedule broke an invariant; the message carries the repro."""


def repro_command(seed: int, waves: int) -> str:
    return (
        "PYTHONPATH=src python -m pytest tests/soak -q "
        f"--soak-seed {seed} --soak-waves {waves}"
    )


@dataclass
class SoakReport:
    """What one completed schedule did (the smoke asserts on these)."""

    seed: int
    waves: int
    ops: int = 0
    queries_served: int = 0
    deltas_applied: int = 0
    faults_surfaced: int = 0
    joins: int = 0
    leaves: int = 0
    events: list[str] = field(default_factory=list)


class _Schedule:
    """One seeded schedule run; see the module docstring for the model."""

    def __init__(
        self,
        seed: int,
        waves: int,
        matcher: str,
        params: dict,
        log: Callable[[str], None] | None,
    ):
        self.seed = seed
        self.waves = waves
        self.matcher_name = matcher
        self.params = params
        self.log = log
        self.report = SoakReport(seed=seed, waves=waves)
        self.live: list[WorkerServer] = []
        self.dead: list[WorkerServer] = []
        self.group = None
        self.reference: EvolutionSession | None = None

    # -- bookkeeping ---------------------------------------------------------

    def note(self, message: str) -> None:
        self.report.events.append(message)
        if self.log is not None:
            self.log(message)

    def fail(self, wave: int, message: str) -> None:
        tail = "\n".join(self.report.events[-12:])
        raise SoakFailure(
            f"soak schedule seed={self.seed} broke at wave "
            f"{wave + 1}/{self.waves}: {message}\n"
            f"replay: {repro_command(self.seed, self.waves)}\n"
            f"recent events:\n{tail}"
        )

    def expected(self) -> list[bytes]:
        """Per-query canonical answers of the single-node replay head."""
        return [canonical(answers) for answers in self.reference.answer_sets]

    def sync_addresses(self) -> None:
        if self.live:
            self.executor.addresses = [s.address for s in self.live]
        else:
            # keep one dead address: the next sweep must fail loudly on
            # connect, never crash on an empty address list
            self.executor.addresses = [self.dead[-1].address]

    def settle_delivery_faults(self) -> None:
        # scripted faults address replicas *by index*; drop them before
        # anything shifts the membership under them
        self.faults.drop.clear()
        self.faults.hold.clear()
        self.faults.duplicate.clear()
        self.faults.delay.clear()

    async def release_held(self, wave: int) -> None:
        try:
            await self.faults.release()
        except LOUD as exc:
            # a held record can need a remote rematch to apply; with the
            # right workers dead that refuses loudly — the log still
            # holds the record and catch_up() will heal the replica
            self.report.faults_surfaced += 1
            self.note(
                f"w{wave} release: refused loudly ({type(exc).__name__})"
            )

    # -- lifecycle -----------------------------------------------------------

    async def setup(self) -> None:
        # 2 standing queries + a pool of probe queries the tamper op
        # spends one at a time: a probe is *new* to every replica, so
        # serving it is guaranteed remote traffic (repeat queries are
        # answered from the service's digest cache, and within-bounds
        # delta rematches are local — the paper's point — so neither
        # reliably crosses a tampered wire)
        self.workload = make_workload(
            repo_seed=self.seed * 3 + 1,
            num_schemas=3,
            query_seed=self.seed * 5 + 2,
            num_queries=2 + PROBE_QUERIES,
        )
        self.queries = list(self.workload.queries)
        self.active = 2
        self.next_probe = 2
        self.reference = EvolutionSession(
            make_matcher(
                self.matcher_name, self.workload.objective(), **self.params
            ),
            self.queries,
            DELTA_MAX,
            cache=False,
        )
        self.reference.match(self.workload.repository)
        self.live = [
            WorkerServer(parallel_units=2).start() for _ in range(2)
        ]
        self.executor = RemoteShardExecutor(
            [server.address for server in self.live],
            deadlines=DEADLINES,
            # fast breakers: a schedule's dead workers cool down in
            # fractions of a second, and the jitter draw is seeded so
            # every replay opens and re-admits at the same moments
            breaker_backoff=0.05,
            breaker_backoff_cap=0.5,
            breaker_jitter=0.25,
            rng=random.Random(self.seed),
        )
        self.faults = DeltaLogFaults()
        self.group = replica_group(
            self.matcher_name,
            self.workload.objective(),
            2,
            DELTA_MAX,
            params=self.params,
            cache=False,
            shards=2,
            executor=self.executor,
            delivery=self.faults,
            max_lag=MAX_LAG,
            settle_timeout=SETTLE_TIMEOUT,
        )
        await self.group.start(self.workload.repository)

    async def teardown(self) -> None:
        if self.group is not None:
            try:
                await self.group.stop()
            except Exception:  # noqa: BLE001 - teardown must not mask the run
                pass
        for server in self.live + self.dead:
            try:
                server.stop()
            except Exception:  # noqa: BLE001
                pass

    async def run(self) -> SoakReport:
        await self.setup()
        try:
            for wave in range(self.waves):
                rng = random.Random(f"{self.seed}:{wave}")
                wave_started = time.monotonic()
                for _ in range(rng.randint(2, 4)):
                    await self.step(rng, wave)
                    self.report.ops += 1
                await self.barrier(wave)
                elapsed = time.monotonic() - wave_started
                if elapsed > WAVE_DEADLINE:
                    # the liveness half of the contract: every remote op
                    # is deadline-bounded and no replica can stall the
                    # log, so a wave that blows this bound means
                    # something blocked past its deadline
                    self.fail(
                        wave,
                        f"wave took {elapsed:.1f}s, past the "
                        f"{WAVE_DEADLINE:.0f}s wall-clock bound — "
                        "some op blocked past its deadline",
                    )
        except SoakFailure:
            raise
        except Exception as exc:
            # an unexpected escape is itself a failed schedule — the
            # stack's contract is "loud TransportError/ReplicationError
            # or a correct answer", nothing else
            raise SoakFailure(
                f"soak schedule seed={self.seed} crashed: "
                f"{type(exc).__name__}: {exc}\n"
                f"replay: {repro_command(self.seed, self.waves)}"
            ) from exc
        finally:
            await self.teardown()
        return self.report

    # -- operations ----------------------------------------------------------

    async def step(self, rng: random.Random, wave: int) -> None:
        op = rng.choice(OPS)
        if op == "query":
            await self.op_query(rng, wave)
        elif op == "delta":
            await self.op_delta(rng, wave, faulty=False)
        elif op == "delta_fault":
            await self.op_delta(rng, wave, faulty=True)
        elif op == "tamper":
            await self.op_tamper(rng, wave)
        elif op == "latency":
            await self.op_latency(rng, wave)
        elif op == "stall":
            await self.op_stall(rng, wave)
        elif op == "kill":
            self.op_kill(rng, wave)
        elif op == "restart":
            self.op_restart(wave)
        elif op == "join":
            await self.op_join(rng, wave)
        elif op == "leave":
            await self.op_leave(rng, wave)
        else:
            await self.op_catch_up(rng, wave)

    async def op_query(self, rng: random.Random, wave: int) -> None:
        index = rng.randrange(self.active)
        try:
            answers = await self.group.match(self.queries[index])
        except LOUD as exc:
            self.report.faults_surfaced += 1
            self.note(
                f"w{wave} query q{index}: refused loudly "
                f"({type(exc).__name__})"
            )
            return
        if canonical(answers) != self.expected()[index]:
            self.fail(
                wave,
                f"query q{index} was served an answer that differs from "
                "the single-node replay (a silently wrong answer)",
            )
        self.report.queries_served += 1
        self.note(f"w{wave} query q{index}: ok")

    async def op_delta(
        self, rng: random.Random, wave: int, *, faulty: bool
    ) -> None:
        delta = churn_delta(
            self.group.repository,
            rng.choice((0.2, 0.3)),
            seed=rng.randrange(1_000_000),
        )
        sequence = len(self.group.log) + 1
        label = ""
        if faulty and len(self.group.services) > 1:
            victim = rng.randrange(len(self.group.services))
            kind = rng.choice(("drop", "hold", "duplicate", "delay"))
            if kind == "delay":
                # the long draw exceeds SETTLE_TIMEOUT: the replica must
                # lag (and later catch up), never stall apply_delta
                pause = rng.choice(DELIVERY_DELAYS)
                self.faults.delay[(victim, sequence)] = pause
                label = f" [delay r{victim} {pause}s]"
            else:
                getattr(self.faults, kind).add((victim, sequence))
                label = f" [{kind} r{victim}]"
        logged = len(self.group.log)
        try:
            await self.group.apply_delta(delta)
            outcome = "applied"
        except LOUD as exc:
            self.report.faults_surfaced += 1
            outcome = f"refused loudly ({type(exc).__name__})"
        if len(self.group.log) > logged:
            # The authoritative log holds the record even when a
            # replica's delivery failed mid-loop; the single-node
            # replay must advance with the log, not with the replicas.
            self.reference.apply(delta)
            self.report.deltas_applied += 1
        self.note(f"w{wave} delta seq {sequence}{label}: {outcome}")

    async def op_tamper(self, rng: random.Random, wave: int) -> None:
        if not self.live:
            self.note(f"w{wave} tamper: no live workers")
            return
        victim = self.live[rng.randrange(len(self.live))]
        fault = (
            flip_byte(rng.randrange(8, 200))
            if rng.random() < 0.5
            else cut_after(rng.randrange(4, 120))
        )
        direction = "upstream" if rng.random() < 0.5 else "downstream"
        # "solo" routes *every* unit through the tampered relay — no
        # healthy peer to retry on, so a firing fault must surface
        # loudly; otherwise the healthy workers absorb the damage and
        # the answer must still be correct.  op_query asserts both arms.
        solo = rng.random() < 0.4
        self.note(
            f"w{wave} tamper {direction} {type(fault).__name__} "
            f"on :{victim.address[1]}{' [solo]' if solo else ''}"
        )
        proxy = TamperProxy(victim.address, **{direction: fault})
        await self.query_through(proxy, victim, solo, rng, wave)

    async def op_latency(self, rng: random.Random, wave: int) -> None:
        """A slow wire in front of one worker: late bytes, same bytes.

        Latency never corrupts, so whichever worker serves, the answer
        must stay byte-identical — the per-chunk delay is far inside
        the op deadlines, exercising that deadlines do not misfire on a
        merely slow (healthy) peer.
        """
        if not self.live:
            self.note(f"w{wave} latency: no live workers")
            return
        victim = self.live[rng.randrange(len(self.live))]
        delay_ms = rng.choice((20, 40, 60))
        solo = rng.random() < 0.4
        self.note(
            f"w{wave} latency {delay_ms}ms on :{victim.address[1]}"
            f"{' [solo]' if solo else ''}"
        )
        proxy = DelayProxy(victim.address, delay_ms=delay_ms)
        await self.query_through(proxy, victim, solo, rng, wave)

    async def op_stall(self, rng: random.Random, wave: int) -> None:
        """A one-way partition: the connection hangs open, silently.

        No EOF ever arrives, so only the executor's op deadlines can
        unblock the sweep.  Solo, the deadline must fire and surface
        loudly; with a healthy peer, the units land there and the
        answer must stay byte-identical.  Either way the stalled op is
        bounded — the wave's wall-clock bound is the proof.
        """
        if not self.live:
            self.note(f"w{wave} stall: no live workers")
            return
        victim = self.live[rng.randrange(len(self.live))]
        stall_after = rng.randrange(0, 300)
        solo = rng.random() < 0.4
        self.note(
            f"w{wave} stall after {stall_after}B on :{victim.address[1]}"
            f"{' [solo]' if solo else ''}"
        )
        proxy = TamperProxy(victim.address, stall_after=stall_after)
        await self.query_through(proxy, victim, solo, rng, wave)

    async def query_through(
        self,
        proxy: TamperProxy,
        victim: WorkerServer,
        solo: bool,
        rng: random.Random,
        wave: int,
    ) -> None:
        """Route one fresh query through ``proxy`` in front of ``victim``."""
        proxy.start()
        if solo:
            self.executor.addresses = [proxy.address]
        else:
            self.executor.addresses = [
                proxy.address if server is victim else server.address
                for server in self.live
            ]
        try:
            # Spend a probe query: new to every replica, so serving it
            # is a fresh remote sweep across the faulted wire.  With a
            # healthy peer the faulted worker is abandoned and the
            # units retried there (the answer must still be
            # byte-identical to the replay); solo, a firing fault must
            # refuse loudly.  Probes exhausted → a plain query (which
            # may be served from cache without touching the network).
            if self.next_probe < len(self.queries):
                probe = self.next_probe
                self.next_probe += 1
                self.active = self.next_probe
                await self.probe_query(probe, wave)
            else:
                await self.op_query(rng, wave)
        finally:
            proxy.stop()
            self.sync_addresses()

    async def probe_query(self, index: int, wave: int) -> None:
        try:
            answers = await self.group.match(self.queries[index])
        except LOUD as exc:
            self.report.faults_surfaced += 1
            self.note(
                f"w{wave} probe q{index}: refused loudly "
                f"({type(exc).__name__})"
            )
            return
        if canonical(answers) != self.expected()[index]:
            self.fail(
                wave,
                f"probe query q{index} was served an answer that differs "
                "from the single-node replay (a silently wrong answer)",
            )
        self.report.queries_served += 1
        self.note(f"w{wave} probe q{index}: ok")

    def op_kill(self, rng: random.Random, wave: int) -> None:
        if not self.live:
            self.note(f"w{wave} kill: no live workers")
            return
        victim = self.live.pop(rng.randrange(len(self.live)))
        victim.kill()
        self.dead.append(victim)
        self.sync_addresses()
        self.note(
            f"w{wave} kill worker :{victim.address[1]} "
            f"({len(self.live)} live)"
        )

    def op_restart(self, wave: int) -> None:
        server = WorkerServer(parallel_units=2).start()
        self.live.append(server)
        self.sync_addresses()
        self.note(
            f"w{wave} restart worker :{server.address[1]} "
            f"({len(self.live)} live)"
        )

    async def op_join(self, rng: random.Random, wave: int) -> None:
        if len(self.group.services) >= MAX_REPLICAS:
            self.note(f"w{wave} join: at replica cap")
            return
        matcher = make_matcher(
            self.matcher_name, self.workload.objective(), **self.params
        )
        try:
            index = await self.group.join(matcher)
        except LOUD as exc:
            # join() replays the log through the remote executor; with
            # every worker dead the catch-up refuses loudly and the
            # joiner sits stale until the barrier heals it
            self.report.faults_surfaced += 1
            self.note(
                f"w{wave} join: refused loudly ({type(exc).__name__})"
            )
            return
        self.report.joins += 1
        self.note(
            f"w{wave} join: replica {index} caught up to seq "
            f"{len(self.group.log)}"
        )

    async def op_leave(self, rng: random.Random, wave: int) -> None:
        if len(self.group.services) <= 1:
            self.note(f"w{wave} leave: last replica stays")
            return
        await self.release_held(wave)
        self.settle_delivery_faults()
        index = rng.randrange(len(self.group.services))
        await self.group.leave(index)
        self.report.leaves += 1
        self.note(
            f"w{wave} leave: replica {index} gone "
            f"({len(self.group.services)} remain)"
        )

    async def op_catch_up(self, rng: random.Random, wave: int) -> None:
        index = rng.randrange(len(self.group.services))
        try:
            replayed = await self.group.catch_up(index)
        except LOUD as exc:
            self.report.faults_surfaced += 1
            self.note(
                f"w{wave} catch_up r{index}: refused loudly "
                f"({type(exc).__name__})"
            )
            return
        self.note(f"w{wave} catch_up r{index}: replayed {replayed}")

    # -- the wave barrier ----------------------------------------------------

    async def barrier(self, wave: int) -> None:
        """Heal the cluster, then audit recovery + byte-identity.

        Recovery first: every live worker must pass an explicit health
        probe (closing its breaker — a worker that is up but perma-open
        would silently shrink the fleet), and every replica — stale or
        lagging — must return to serving through catch_up().
        """
        if not self.live:
            self.op_restart(wave)
        for server in self.live:
            if not self.executor.probe(server.address):
                self.fail(
                    wave,
                    f"live worker :{server.address[1]} failed its health "
                    "probe after the faults cleared",
                )
            health = self.executor.worker_health(server.address)
            if health.state != "closed":
                self.fail(
                    wave,
                    f"worker :{server.address[1]} answered its probe but "
                    f"its breaker is {health.state}, not closed",
                )
        await self.release_held(wave)
        self.settle_delivery_faults()
        for index in range(len(self.group.services)):
            await self.group.catch_up(index)
            if self.group.lagging(index):
                self.fail(
                    wave, f"replica {index} still lagging after catch_up"
                )
            if not self.group.current(index):
                self.fail(
                    wave, f"replica {index} still stale after catch_up"
                )
        if (
            self.group.repository.content_digest()
            != self.reference.repository.content_digest()
        ):
            self.fail(
                wave,
                "authoritative repository diverged from the single-node "
                "replay (the log and the reference disagree)",
            )
        answers = self.expected()
        for index in range(len(self.group.services)):
            for qi, query in enumerate(self.queries[: self.active]):
                observed = canonical(await self.group.match_on(index, query))
                if observed != answers[qi]:
                    self.fail(
                        wave,
                        f"replica {index} answers query q{qi} differently "
                        "from the single-node replay after healing",
                    )
                self.report.queries_served += 1
        self.note(
            f"w{wave} barrier: {len(self.group.services)} replicas "
            "byte-identical to the replay"
        )


def run_schedule(
    seed: int,
    waves: int,
    *,
    matcher: str = "exhaustive",
    params: dict | None = None,
    log: Callable[[str], None] | None = None,
) -> SoakReport:
    """Run one seeded schedule; raises :class:`SoakFailure` with a repro."""
    schedule = _Schedule(seed, waves, matcher, dict(params or {}), log)
    return asyncio.run(schedule.run())


def run_with_shrink(
    seed: int,
    waves: int,
    **kwargs: object,
) -> SoakReport:
    """:func:`run_schedule`, plus prefix shrinking on failure.

    Wave *w* draws from ``Random(f"{seed}:{w}")`` and all cross-wave
    state evolves deterministically, so a shorter schedule is an exact
    prefix of a longer one — rerunning with fewer waves finds the
    minimal failing length, which the re-raised failure names.
    """
    try:
        return run_schedule(seed, waves, **kwargs)
    except SoakFailure as failure:
        minimal = waves
        for fewer in range(1, waves):
            try:
                run_schedule(seed, fewer, **kwargs)
            except SoakFailure:
                minimal = fewer
                break
        if minimal < waves:
            raise SoakFailure(
                f"{failure}\nshrunk: already fails at {minimal} wave(s) — "
                f"{repro_command(seed, minimal)}"
            ) from failure
        raise

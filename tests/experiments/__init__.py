"""Test subpackage."""

"""CLI ``--workers``/``--shards`` validation and error paths.

The happy path (fanning a demo out over workers) is covered by the doc
examples; these tests pin down the failure modes: invalid counts must
exit with code 1 and a readable message, must not corrupt the
process-wide pipeline defaults, and non-numeric values must be rejected
by the parser itself.
"""

import pytest

from repro.cli import build_parser, main
from repro.matching import pipeline


@pytest.fixture(autouse=True)
def restore_pipeline_defaults():
    """Snapshot and restore module-wide defaults around every test."""
    defaults = pipeline.pipeline_defaults()
    snapshot = (defaults.workers, defaults.shards, defaults.cache_size)
    yield
    pipeline.configure(
        workers=snapshot[0], shards=snapshot[1], cache_size=snapshot[2]
    )


class TestParsing:
    def test_workers_and_shards_parsed(self):
        args = build_parser().parse_args(
            ["--workers", "3", "--shards", "5", "list"]
        )
        assert args.workers == 3
        assert args.shards == 5

    def test_defaults_are_none(self):
        args = build_parser().parse_args(["list"])
        assert args.workers is None
        assert args.shards is None

    def test_non_numeric_workers_rejected_by_parser(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--workers", "many", "list"])
        assert excinfo.value.code == 2
        assert "invalid int value" in capsys.readouterr().err

    def test_non_numeric_shards_rejected_by_parser(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--shards", "x", "list"])
        assert excinfo.value.code == 2


class TestValidation:
    def test_zero_workers_fails_cleanly(self, capsys):
        assert main(["--workers", "0", "list"]) == 1
        err = capsys.readouterr().err
        assert "error:" in err and "workers must be >= 1" in err

    def test_negative_workers_fails_cleanly(self, capsys):
        assert main(["--workers", "-2", "list"]) == 1
        assert "workers must be >= 1" in capsys.readouterr().err

    def test_zero_shards_fails_cleanly(self, capsys):
        assert main(["--shards", "0", "list"]) == 1
        err = capsys.readouterr().err
        assert "error:" in err and "shards must be >= 1" in err

    def test_invalid_workers_leave_defaults_untouched(self):
        before = pipeline.pipeline_defaults().workers
        assert main(["--workers", "0", "list"]) == 1
        assert pipeline.pipeline_defaults().workers == before

    def test_invalid_shards_leave_defaults_untouched(self):
        before = pipeline.pipeline_defaults().shards
        assert main(["--shards", "-1", "list"]) == 1
        assert pipeline.pipeline_defaults().shards == before

    def test_configure_is_atomic_across_flags(self):
        """Valid --workers + invalid --shards must change *nothing*."""
        defaults = pipeline.pipeline_defaults()
        before = (defaults.workers, defaults.shards)
        assert main(["--workers", "4", "--shards", "0", "list"]) == 1
        defaults = pipeline.pipeline_defaults()
        assert (defaults.workers, defaults.shards) == before

    def test_valid_flags_configure_module_defaults(self, capsys):
        assert main(["--workers", "2", "--shards", "3", "list"]) == 0
        defaults = pipeline.pipeline_defaults()
        assert defaults.workers == 2
        assert defaults.shards == 3
        assert "fig08" in capsys.readouterr().out

    def test_shards_alone_keep_serial_workers(self, capsys):
        workers_before = pipeline.pipeline_defaults().workers
        assert main(["--shards", "4", "list"]) == 0
        defaults = pipeline.pipeline_defaults()
        assert defaults.workers == workers_before
        assert defaults.shards == 4


class TestShardedRun:
    def test_demo_runs_sharded_serial(self, capsys):
        """Serial but sharded: exercises the full pipeline path cheaply."""
        assert main(["--small", "--workers", "1", "--shards", "2", "demo"]) == 0
        assert "contained" in capsys.readouterr().out


class TestServeValidation:
    """``serve`` rejects degenerate traffic shapes instead of reporting
    vacuous success (``--repeat 0`` would make ``--verify`` a no-op)."""

    def test_zero_repeat_fails_cleanly(self, capsys, tmp_path):
        assert main(["--small", "serve", str(tmp_path / "s"),
                     "--repeat", "0"]) == 1
        assert "--repeat must be >= 1" in capsys.readouterr().err

    def test_negative_deltas_fails_cleanly(self, capsys):
        assert main(["--small", "serve", "--deltas", "-1"]) == 1
        assert "--deltas must be >= 0" in capsys.readouterr().err

    def test_nonpositive_churn_fails_cleanly(self, capsys):
        assert main(["--small", "serve", "--deltas", "1",
                     "--churn", "0"]) == 1
        assert "--churn must be > 0" in capsys.readouterr().err

    def test_invalid_max_batch_fails_cleanly(self, capsys):
        assert main(["--small", "serve", "--max-batch", "0"]) == 1
        assert "max_batch must be >= 1" in capsys.readouterr().err

"""CLI ``--workers``/``--shards`` validation and error paths.

The happy path (fanning a demo out over workers) is covered by the doc
examples; these tests pin down the failure modes: invalid counts must
exit with code 1 and a readable message, must not corrupt the
process-wide pipeline defaults, and non-numeric values must be rejected
by the parser itself.
"""

import pytest

from repro.cli import build_parser, main
from repro.matching import pipeline


@pytest.fixture(autouse=True)
def restore_pipeline_defaults():
    """Snapshot and restore module-wide defaults around every test."""
    defaults = pipeline.pipeline_defaults()
    snapshot = (defaults.workers, defaults.shards, defaults.cache_size)
    yield
    pipeline.configure(
        workers=snapshot[0], shards=snapshot[1], cache_size=snapshot[2]
    )


class TestParsing:
    def test_workers_and_shards_parsed(self):
        args = build_parser().parse_args(
            ["--workers", "3", "--shards", "5", "list"]
        )
        assert args.workers == 3
        assert args.shards == 5

    def test_defaults_are_none(self):
        args = build_parser().parse_args(["list"])
        assert args.workers is None
        assert args.shards is None

    def test_non_numeric_workers_rejected_by_parser(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--workers", "many", "list"])
        assert excinfo.value.code == 2
        assert "invalid int value" in capsys.readouterr().err

    def test_non_numeric_shards_rejected_by_parser(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--shards", "x", "list"])
        assert excinfo.value.code == 2


class TestValidation:
    def test_zero_workers_fails_cleanly(self, capsys):
        assert main(["--workers", "0", "list"]) == 1
        err = capsys.readouterr().err
        assert "error:" in err and "workers must be >= 1" in err

    def test_negative_workers_fails_cleanly(self, capsys):
        assert main(["--workers", "-2", "list"]) == 1
        assert "workers must be >= 1" in capsys.readouterr().err

    def test_zero_shards_fails_cleanly(self, capsys):
        assert main(["--shards", "0", "list"]) == 1
        err = capsys.readouterr().err
        assert "error:" in err and "shards must be >= 1" in err

    def test_invalid_workers_leave_defaults_untouched(self):
        before = pipeline.pipeline_defaults().workers
        assert main(["--workers", "0", "list"]) == 1
        assert pipeline.pipeline_defaults().workers == before

    def test_invalid_shards_leave_defaults_untouched(self):
        before = pipeline.pipeline_defaults().shards
        assert main(["--shards", "-1", "list"]) == 1
        assert pipeline.pipeline_defaults().shards == before

    def test_configure_is_atomic_across_flags(self):
        """Valid --workers + invalid --shards must change *nothing*."""
        defaults = pipeline.pipeline_defaults()
        before = (defaults.workers, defaults.shards)
        assert main(["--workers", "4", "--shards", "0", "list"]) == 1
        defaults = pipeline.pipeline_defaults()
        assert (defaults.workers, defaults.shards) == before

    def test_valid_flags_configure_module_defaults(self, capsys):
        assert main(["--workers", "2", "--shards", "3", "list"]) == 0
        defaults = pipeline.pipeline_defaults()
        assert defaults.workers == 2
        assert defaults.shards == 3
        assert "fig08" in capsys.readouterr().out

    def test_shards_alone_keep_serial_workers(self, capsys):
        workers_before = pipeline.pipeline_defaults().workers
        assert main(["--shards", "4", "list"]) == 0
        defaults = pipeline.pipeline_defaults()
        assert defaults.workers == workers_before
        assert defaults.shards == 4


class TestShardedRun:
    def test_demo_runs_sharded_serial(self, capsys):
        """Serial but sharded: exercises the full pipeline path cheaply."""
        assert main(["--small", "--workers", "1", "--shards", "2", "demo"]) == 0
        assert "contained" in capsys.readouterr().out


class TestMatcherSpecs:
    """``--matcher`` spec parsing and validation, including the backend
    variants (``bm25``/``dense``/``ensemble``) the registry carries."""

    def test_variant_specs_parse(self):
        from repro.cli import _parse_matcher_spec

        assert _parse_matcher_spec("bm25:k1=1.2,b=0.5") == (
            "bm25",
            {"k1": 1.2, "b": 0.5},
        )
        assert _parse_matcher_spec("dense:dim=64,n=2") == (
            "dense",
            {"dim": 64, "n": 2},
        )
        assert _parse_matcher_spec("ensemble:lexical=0.4,bm25=0.4,dense=0.2") == (
            "ensemble",
            {"lexical": 0.4, "bm25": 0.4, "dense": 0.2},
        )

    def test_unknown_matcher_lists_variants(self, capsys, tmp_path):
        assert main(["--small", "snapshot", str(tmp_path / "s"),
                     "--matcher", "magic"]) == 1
        err = capsys.readouterr().err
        assert "available:" in err
        for name in ("bm25", "dense", "ensemble"):
            assert name in err

    def test_non_numeric_matcher_param_fails_cleanly(self, capsys, tmp_path):
        assert main(["--small", "snapshot", str(tmp_path / "s"),
                     "--matcher", "bm25:k1=high"]) == 1
        assert "must be numeric" in capsys.readouterr().err

    def test_compare_across_families_reports_both_bands(self, capsys):
        """Bounds never rank across objectives: comparing a backend
        variant with a plain improvement must validate each against its
        own family's exhaustive baseline and skip the dominance verdict."""
        assert main(["--small", "compare", "bm25:k1=1.2",
                     "beam:beam_width=8"]) == 0
        out = capsys.readouterr().out
        assert "different objective families" in out
        assert "bm25:k1=1.2" in out
        assert "beam:beam_width=8" in out
        assert out.count("band sound") == 2
        assert "dominates" not in out

    def test_snapshot_persists_backend_variant_substrate(self, capsys, tmp_path):
        """A variant snapshot must hold the *derived* objective's state:
        an identically configured variant warm-loads it, and the base
        (lexical) matcher refuses it instead of serving foreign scores."""
        from repro.errors import SnapshotError
        from repro.evaluation import build_workload
        from repro.evaluation.workloads import small_config
        from repro.matching import load_snapshot, make_matcher

        directory = tmp_path / "snap"
        assert main(["--small", "snapshot", str(directory),
                     "--matcher", "bm25:k1=1.2"]) == 0
        assert "snapshot written" in capsys.readouterr().out

        workload = build_workload(small_config())
        snapshot = load_snapshot(
            directory, make_matcher("bm25", workload.objective, k1=1.2)
        )
        assert snapshot.result is not None
        with pytest.raises(SnapshotError):
            load_snapshot(
                directory, make_matcher("exhaustive", workload.objective)
            )


class TestServeValidation:
    """``serve`` rejects degenerate traffic shapes instead of reporting
    vacuous success (``--repeat 0`` would make ``--verify`` a no-op)."""

    def test_zero_repeat_fails_cleanly(self, capsys, tmp_path):
        assert main(["--small", "serve", str(tmp_path / "s"),
                     "--repeat", "0"]) == 1
        assert "--repeat must be >= 1" in capsys.readouterr().err

    def test_negative_deltas_fails_cleanly(self, capsys):
        assert main(["--small", "serve", "--deltas", "-1"]) == 1
        assert "--deltas must be >= 0" in capsys.readouterr().err

    def test_nonpositive_churn_fails_cleanly(self, capsys):
        assert main(["--small", "serve", "--deltas", "1",
                     "--churn", "0"]) == 1
        assert "--churn must be > 0" in capsys.readouterr().err

    def test_invalid_max_batch_fails_cleanly(self, capsys):
        assert main(["--small", "serve", "--max-batch", "0"]) == 1
        assert "max_batch must be >= 1" in capsys.readouterr().err

"""Unit tests for the CLI compare subcommand and spec parsing."""

import pytest

from repro.cli import _parse_matcher_spec, main
from repro.errors import ReproError


class TestSpecParsing:
    def test_bare_name(self):
        assert _parse_matcher_spec("beam") == ("beam", {})

    def test_single_int_param(self):
        assert _parse_matcher_spec("beam:beam_width=10") == (
            "beam",
            {"beam_width": 10},
        )

    def test_multiple_params(self):
        name, params = _parse_matcher_spec(
            "hybrid:beam_width=4,clusters_per_element=2"
        )
        assert name == "hybrid"
        assert params == {"beam_width": 4, "clusters_per_element": 2}

    def test_float_param(self):
        _name, params = _parse_matcher_spec("clustering:join_threshold=0.6")
        assert params == {"join_threshold": 0.6}

    def test_malformed_pair_rejected(self):
        with pytest.raises(ReproError, match="bad matcher spec"):
            _parse_matcher_spec("beam:beam_width")

    def test_non_numeric_value_rejected(self):
        with pytest.raises(ReproError, match="must be numeric"):
            _parse_matcher_spec("beam:beam_width=wide")


class TestCompareCommand:
    def test_compare_prints_verdicts(self, capsys):
        code = main(
            [
                "--small",
                "compare",
                "beam:beam_width=40",
                "clustering:clusters_per_element=1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Band comparison" in out
        assert "provably" in out or "undecided" in out

    def test_compare_unknown_matcher_fails_cleanly(self, capsys):
        code = main(["--small", "compare", "beam", "oracle-matcher"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_compare_bad_spec_fails_cleanly(self, capsys):
        code = main(["--small", "compare", "beam:beam_width", "clustering"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

"""Behavioural tests for the extended ablations (small workload)."""

import pytest

from repro.evaluation.workloads import small_config
from repro.experiments.harness import run_experiment

CONFIG = small_config()


class TestAblTopN:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("abl-topn", CONFIG)

    def test_two_systems_reported(self, result):
        assert len(result.tables) == 2

    def test_effective_n_monotone(self, result):
        for table in result.tables:
            ns = [row[0] for row in table.rows]
            assert ns == sorted(ns)

    def test_top_is_narrower_than_deep_on_average(self, result):
        for table in result.tables:
            widths = [row[5] for row in table.rows]
            half = max(1, len(widths) // 2)
            top_mean = sum(widths[:half]) / half
            deep_mean = sum(widths[half:]) / max(1, len(widths) - half)
            assert top_mean <= deep_mean + 0.25


class TestAblEstimators:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("abl-estimators", CONFIG)

    def test_all_strategies_within_guarantee(self, result):
        for row in result.tables[0].rows:
            assert row[4] == "yes"

    def test_observed_error_below_guaranteed(self, result):
        for row in result.tables[0].rows:
            _s, mean_err, max_err, mean_guarantee, _ok = row
            assert mean_err <= max_err + 1e-12

    def test_four_strategies(self, result):
        assert len(result.tables[0].rows) == 4


class TestAblTuning:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("abl-tuning", CONFIG)

    def test_all_configurations_scored(self, result):
        assert len(result.tables[0].rows) == 8

    def test_truth_within_bounds_per_config(self, result):
        for row in result.tables[0].rows:
            _name, _a2, worst, _rand, true, best = row
            assert worst <= true <= best

    def test_tau_values_in_range(self, result):
        for _basis, tau in result.tables[1].rows:
            assert -1 <= tau <= 1

    def test_random_basis_positively_correlated(self, result):
        taus = dict(result.tables[1].rows)
        assert taus["random-curve expectation"] > 0


class TestAblConfidence:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("abl-confidence", CONFIG)

    def test_coverage_meets_chebyshev_guarantee(self, result):
        for row in result.tables[0].rows:
            assert row[5] >= 8 / 9 - 1e-9

    def test_intervals_ordered(self, result):
        for row in result.tables[0].rows:
            _d, expected, _radius, lower, upper, _cov = row
            assert lower <= expected <= upper

"""Unit tests for the paper's verbatim example constants."""

from fractions import Fraction

from repro.experiments.paper_data import (
    FIGURE8_EXPECTED,
    FIGURE13_EXPECTED,
    figure8_improved_sizes,
    figure8_original_profile,
    figure13_high,
    figure13_low,
)


class TestFigure8Data:
    def test_original_counts(self):
        profile = figure8_original_profile()
        assert profile.answer_sizes() == [40, 72]
        assert profile.correct_counts() == [15, 27]

    def test_stable_precision_three_eighths(self):
        profile = figure8_original_profile()
        for counts in profile.counts:
            assert counts.precision == FIGURE8_EXPECTED["original_precision"]

    def test_improved_sizes(self):
        assert figure8_improved_sizes().sizes == (32, 48)

    def test_relevant_unknown(self):
        assert figure8_original_profile().relevant is None

    def test_expected_ratios(self):
        assert FIGURE8_EXPECTED["size_ratio_delta1"] == Fraction(32, 40)
        assert FIGURE8_EXPECTED["size_ratio_delta2"] == Fraction(48, 72)


class TestFigure13Data:
    def test_measurement_points(self):
        assert figure13_low().answers == 50
        assert figure13_low().correct == 30
        assert figure13_high().answers == 70
        assert figure13_high().correct == 36
        assert figure13_low().relevant == 100

    def test_published_pr_values(self):
        assert figure13_low().precision == Fraction(30, 50)
        assert figure13_low().recall == Fraction(30, 100)
        assert figure13_high().precision == Fraction(36, 70)
        assert figure13_high().recall == Fraction(36, 100)

    def test_expected_segment(self):
        assert FIGURE13_EXPECTED["worst_precision"] == Fraction(30, 54)
        assert FIGURE13_EXPECTED["best_precision"] == Fraction(34, 54)

"""Behavioural tests for the ablation experiments (small workload)."""

import pytest

from repro.evaluation.workloads import small_config
from repro.experiments.harness import run_experiment

CONFIG = small_config()


class TestAblIncrements:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("abl-increments", CONFIG)

    def test_incremental_never_wider_than_naive(self, result):
        for row in result.tables[0].rows:
            _n, naive, incremental, gain = row
            assert incremental <= naive + 1e-12
            assert gain >= -1e-12

    def test_naive_width_constant_at_final_threshold(self, result):
        naives = {round(row[1], 12) for row in result.tables[0].rows}
        assert len(naives) == 1

    def test_incremental_tightens_with_granularity(self, result):
        widths = [row[2] for row in result.tables[0].rows]
        assert widths[-1] <= widths[0] + 1e-12


class TestAblHsize:
    def test_true_guess_is_lossless(self):
        result = run_experiment("abl-hsize", CONFIG)
        true_row = next(
            row for row in result.tables[0].rows if row[0] == "1.00x"
        )
        assert true_row[2] == 0.0  # mean |dP|
        assert true_row[3] == 0.0  # max |dP|

    def test_errors_stay_small(self):
        result = run_experiment("abl-hsize", CONFIG)
        for row in result.tables[0].rows:
            assert row[3] < 0.2  # rounding-level, not structural


class TestAblPooling:
    def test_pool_depth_increases_judged_h(self):
        result = run_experiment("abl-pooling", CONFIG)
        judged = [row[2] for row in result.tables[0].rows]
        assert judged == sorted(judged)

    def test_reference_table_contains_truth_inside_bounds(self):
        result = run_experiment("abl-pooling", CONFIG)
        (_h, true_p, _r, p_worst, p_best), = result.tables[1].rows
        assert p_worst - 1e-12 <= true_p <= p_best + 1e-12


class TestAblNoise:
    def test_zero_noise_has_zero_violations(self):
        result = run_experiment("abl-noise", CONFIG)
        clean = next(row for row in result.tables[0].rows if row[0] == 0.0)
        assert clean[3] == 0

    def test_noise_inflates_judged_h(self):
        result = run_experiment("abl-noise", CONFIG)
        rows = result.tables[0].rows
        assert rows[-1][1] > rows[0][1]


class TestAblScaling:
    def test_runtime_reported_for_each_size(self):
        result = run_experiment("abl-scaling", CONFIG)
        assert [row[0] for row in result.tables[0].rows] == [10, 100, 1000, 5000]

    def test_runtime_grows_subquadratically(self):
        result = run_experiment("abl-scaling", CONFIG)
        rows = result.tables[0].rows
        # 500x more thresholds should cost far less than 500^2 more time
        assert rows[-1][2] < rows[0][2] * 500 * 50


@pytest.mark.slow
class TestAblMatchers:
    def test_all_sweep_rows_contained(self):
        result = run_experiment("abl-matchers", CONFIG)
        for table in result.tables:
            for row in table.rows:
                assert row[-1] == "yes"

    def test_retention_monotone_in_parameter(self):
        result = run_experiment("abl-matchers", CONFIG)
        for table in result.tables:
            sizes = [row[2] for row in table.rows]
            assert sizes == sorted(sizes)

"""Behavioural tests for the micro-vs-macro ablation."""

import pytest

from repro.evaluation.workloads import small_config
from repro.experiments.harness import run_experiment


@pytest.fixture(scope="module")
def result():
    return run_experiment("abl-macro", small_config())


class TestAblMacro:
    def test_two_tables(self, result):
        assert len(result.tables) == 2

    def test_zero_macro_violations(self, result):
        assert any("violations: 0" in note for note in result.notes)

    def test_macro_bounds_bracket_macro_truth(self, result):
        for row in result.tables[1].rows:
            _d, p_worst, p_actual, p_best, r_worst, r_actual, r_best = row
            assert p_worst - 1e-9 <= p_actual <= p_best + 1e-9
            assert r_worst - 1e-9 <= r_actual <= r_best + 1e-9

    def test_micro_macro_views_aligned(self, result):
        micro = [row[0] for row in result.tables[0].rows]
        macro = [row[0] for row in result.tables[1].rows]
        assert micro == macro

    def test_values_in_unit_interval(self, result):
        for table in result.tables:
            for row in table.rows:
                for value in row[1:]:
                    assert 0 <= value <= 1

"""Behavioural tests for the backend ablation (small workload)."""

import pytest

from repro.evaluation.workloads import small_config
from repro.experiments.harness import run_experiment
from repro.experiments.ablations_backends import (
    BACKEND_FAMILIES,
    MUTATION_PROFILES,
)

CONFIG = small_config()


@pytest.fixture(scope="module")
def result():
    return run_experiment("abl-backends", CONFIG)


class TestProfileTables:
    def test_one_table_per_profile_plus_summary_and_bounds(self, result):
        assert len(result.tables) == len(MUTATION_PROFILES) + 2

    def test_every_family_evaluated_per_profile(self, result):
        for table in result.tables[: len(MUTATION_PROFILES)]:
            families = [row[0] for row in table.rows]
            assert families == [
                "lexical" if f == "exhaustive" else f for f in BACKEND_FAMILIES
            ]

    def test_metrics_well_formed(self, result):
        for table in result.tables[: len(MUTATION_PROFILES)]:
            for _family, answers, correct, p, r, f1 in table.rows:
                assert 0 <= correct <= answers
                assert 0.0 <= p <= 1.0
                assert 0.0 <= r <= 1.0
                assert 0.0 <= f1 <= 1.0


class TestWinnerSummary:
    def test_winner_rows_align_with_profiles(self, result):
        summary = result.tables[len(MUTATION_PROFILES)]
        assert [row[0] for row in summary.rows] == [
            name for name, _ in MUTATION_PROFILES
        ]

    def test_winner_has_best_f1_of_its_profile(self, result):
        for index, (_profile, winner, f1) in enumerate(
            result.tables[len(MUTATION_PROFILES)].rows
        ):
            profile_rows = result.tables[index].rows
            best = max(row[5] for row in profile_rows)
            assert f1 == best
            assert any(
                row[0] == winner and row[5] == best for row in profile_rows
            )


class TestFamilyBounds:
    def test_every_family_band_sound(self, result):
        bounds = result.tables[len(MUTATION_PROFILES) + 1]
        assert len(bounds.rows) == len(BACKEND_FAMILIES)
        for _family, a1, a2, worst, true, best, sound in bounds.rows:
            assert sound == "yes"
            assert a2 <= a1
            assert worst <= true <= best

"""Unit tests for the experiment harness and registry."""

import pytest

from repro.errors import ExperimentError
from repro.evaluation.workloads import small_config
from repro.experiments.harness import (
    ExperimentResult,
    ExperimentTable,
    base_runs,
    list_experiments,
    run_experiment,
)


class TestRegistry:
    def test_all_figures_registered(self):
        ids = {eid for eid, _ in list_experiments()}
        expected_figures = {
            "fig05",
            "fig06",
            "fig08",
            "fig09",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
        }
        assert expected_figures <= ids

    def test_all_ablations_registered(self):
        ids = {eid for eid, _ in list_experiments()}
        expected = {
            "abl-increments",
            "abl-hsize",
            "abl-matchers",
            "abl-pooling",
            "abl-noise",
            "abl-scaling",
            "abl-backends",
        }
        assert expected <= ids

    def test_unknown_id_lists_known(self):
        with pytest.raises(ExperimentError, match="known:"):
            run_experiment("fig99")


class TestBaseRuns:
    def test_cached_per_config(self):
        first = base_runs(small_config())
        second = base_runs(small_config())
        assert first is second

    def test_bundle_runs_share_schedule(self):
        bundle = base_runs(small_config())
        for run in bundle.improvements().values():
            assert run.schedule == bundle.original.schedule

    def test_improvements_are_subsets(self):
        bundle = base_runs(small_config())
        for name, run in bundle.improvements().items():
            run.answers.check_subset_of(bundle.original.answers, name)


class TestResultRendering:
    def test_render_contains_tables_and_notes(self):
        result = ExperimentResult("x", "Title")
        result.notes.append("a note")
        result.add_table("T", ["a"], [(1,)])
        result.plots.append("PLOT")
        out = result.render()
        assert "== x: Title ==" in out
        assert "note: a note" in out
        assert "T" in out
        assert "PLOT" in out

    def test_table_render_uses_digits(self):
        table = ExperimentTable("T", ["x"], [(0.123456,)])
        assert "0.123" in table.render(float_digits=3)

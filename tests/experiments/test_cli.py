"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_figure_command(self):
        args = build_parser().parse_args(["--small", "figure", "fig08"])
        assert args.experiment_id == "fig08"
        assert args.small

    def test_seed_option(self):
        args = build_parser().parse_args(["--seed", "9", "demo"])
        assert args.seed == 9

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list_prints_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig08" in out and "abl-pooling" in out

    def test_figure_exact(self, capsys):
        assert main(["figure", "fig08"]) == 0
        out = capsys.readouterr().out
        assert "7/48" in out

    def test_figure_unknown_returns_error(self, capsys):
        assert main(["figure", "fig99"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_figure_small_workload(self, capsys):
        assert main(["--small", "figure", "fig10"]) == 0
        out = capsys.readouterr().out
        assert "S2-two" in out

    def test_save_and_show_collection(self, capsys, tmp_path):
        target = str(tmp_path / "col")
        assert main(["--small", "save-collection", target]) == 0
        assert main(["show-collection", target]) == 0
        out = capsys.readouterr().out
        assert "|H| pooled" in out

    def test_show_collection_missing(self, capsys, tmp_path):
        assert main(["show-collection", str(tmp_path)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_demo_prints_guarantees(self, capsys):
        assert main(["--small", "demo"]) == 0
        out = capsys.readouterr().out
        assert "Guarantees" in out
        assert "contained" in out


class TestEvolve:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["evolve"])
        assert args.command == "evolve"
        assert args.matcher == "exhaustive"
        assert args.delta == 0.3
        assert args.churn == "0.05,0.10,0.25"
        assert args.steps == 2
        assert not args.verify

    def test_evolve_replays_and_verifies(self, capsys):
        assert main([
            "--small", "evolve", "--matcher", "beam:beam_width=6",
            "--churn", "0.2", "--steps", "2", "--verify",
        ]) == 0
        out = capsys.readouterr().out
        assert "evolution replay" in out
        assert "identical" in out
        assert "incremental" in out

    def test_evolve_full_recompute_matcher(self, capsys):
        assert main([
            "--small", "evolve", "--matcher",
            "clustering:clusters_per_element=2",
            "--churn", "0.2", "--steps", "1",
        ]) == 0
        assert "full" in capsys.readouterr().out

    def test_bad_churn_list_fails_cleanly(self, capsys):
        assert main(["--small", "evolve", "--churn", "x,y"]) == 1
        assert "churn" in capsys.readouterr().err

    def test_empty_churn_list_fails_cleanly(self, capsys):
        assert main(["--small", "evolve", "--churn", ","]) == 1
        assert "error:" in capsys.readouterr().err

    def test_bad_matcher_spec_fails_cleanly(self, capsys):
        assert main(["--small", "evolve", "--matcher", "nope"]) == 1
        assert "unknown matcher" in capsys.readouterr().err

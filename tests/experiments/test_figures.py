"""Behavioural tests for every figure experiment on the small workload.

Each test checks the *shape* claims the paper makes for that figure, not
absolute numbers (the substrate is synthetic).
"""

import pytest

from repro.evaluation.workloads import small_config
from repro.experiments.harness import base_runs, run_experiment

CONFIG = small_config()


@pytest.fixture(scope="module")
def bundle():
    return base_runs(CONFIG)


class TestFig05:
    def test_runs_and_reports(self, bundle):
        result = run_experiment("fig05", CONFIG)
        assert result.tables
        assert result.plots

    def test_precision_falls_as_recall_rises(self, bundle):
        curve = bundle.original.profile.pr_curve()
        assert curve.precisions()[0] >= curve.precisions()[-1]
        assert curve.recalls()[0] <= curve.recalls()[-1]

    def test_rows_match_profile(self, bundle):
        result = run_experiment("fig05", CONFIG)
        rows = result.tables[0].rows
        assert len(rows) == len(bundle.original.profile.schedule)


class TestFig06:
    def test_eleven_levels(self):
        result = run_experiment("fig06", CONFIG)
        assert len(result.tables[0].rows) == 11

    def test_interpolated_precision_non_increasing(self):
        result = run_experiment("fig06", CONFIG)
        precisions = [row[1] for row in result.tables[0].rows]
        assert all(a >= b for a, b in zip(precisions, precisions[1:]))


class TestFig08:
    def test_exact_reproduction(self):
        # the experiment itself raises if any value deviates from the paper
        result = run_experiment("fig08", CONFIG)
        assert "7/48" in result.tables[1].render()


class TestFig09:
    def test_band_is_narrow_for_ratio_09(self, bundle):
        result = run_experiment("fig09", CONFIG)
        widths = [row[7] - row[5] for row in result.tables[0].rows]  # Pbest-Pworst
        assert max(widths) < 0.35

    def test_ratios_near_09(self):
        result = run_experiment("fig09", CONFIG)
        for row in result.tables[0].rows:
            assert 0.75 <= row[1] <= 1.0  # rounding on small increments


class TestFig10:
    def test_two_ratio_tables(self):
        result = run_experiment("fig10", CONFIG)
        assert len(result.tables) == 2

    def test_clustering_more_aggressive_than_beam(self, bundle):
        result = run_experiment("fig10", CONFIG)
        beam_final = result.tables[0].rows[-1][3]
        clustering_final = result.tables[1].rows[-1][3]
        assert clustering_final <= beam_final

    def test_ratios_start_near_one(self):
        result = run_experiment("fig10", CONFIG)
        for table in result.tables:
            assert table.rows[0][3] >= 0.8  # best answers mostly retained


class TestFig11:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("fig11", CONFIG)

    def test_containment_reported(self, result):
        containment_notes = [n for n in result.notes if "contained" in n]
        assert len(containment_notes) >= 2
        assert not any("VIOLATED" in n for n in result.notes)

    def test_band_ordering_in_rows(self, result):
        for table in result.tables:
            for row in table.rows:
                _d, _ratio, p_worst, _p_rand, p_actual, p_best = row[:6]
                assert p_worst <= p_actual + 1e-12
                assert p_actual <= p_best + 1e-12

    def test_random_within_band(self, result):
        for table in result.tables:
            for row in table.rows:
                _d, _ratio, p_worst, p_rand, _pa, p_best = row[:6]
                assert p_worst - 1e-12 <= p_rand <= p_best + 1e-12

    def test_guarantee_notes_present(self, result):
        assert any("worst-case precision" in n for n in result.notes)


class TestFig12:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("fig12", CONFIG)

    def test_three_guesses_plus_summary(self, result):
        assert len(result.tables) == 4

    def test_true_guess_nearly_violation_free(self, result):
        # even the true |H| cannot fully undo the 11-point interpolation's
        # information loss (max-interpolation distorts counts), but the
        # violations must stay rare compared to the schedule length
        summary = result.tables[-1].rows
        true_row = next(row for row in summary if row[0] == "1.00x")
        thresholds = len(result.tables[1].rows)
        assert true_row[3] <= max(2, thresholds // 4)

    def test_wrong_guesses_no_better_than_truth(self, result):
        summary = {row[0]: row[3] for row in result.tables[-1].rows}
        assert summary["1.00x"] <= max(summary["0.50x"], summary["2.00x"])

    def test_summary_reports_widths(self, result):
        for row in result.tables[-1].rows:
            assert 0 <= row[2] <= 1


class TestFig13:
    def test_exact_reproduction(self):
        result = run_experiment("fig13", CONFIG)
        assert result.tables[0].rows[0][0] == 50
        assert result.tables[0].rows[-1][0] == 70

    def test_monotone_recall_along_boundary(self):
        result = run_experiment("fig13", CONFIG)
        worst_recalls = [row[1] for row in result.tables[0].rows]
        assert worst_recalls == sorted(worst_recalls)

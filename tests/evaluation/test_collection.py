"""Unit tests for saving/loading test collections."""

import json

import pytest

from repro.errors import GroundTruthError
from repro.evaluation.collection import load_collection, save_collection


class TestRoundTrip:
    def test_save_creates_layout(self, small_workload, tmp_path):
        root = save_collection(small_workload.suite, tmp_path / "col")
        assert (root / "meta.json").exists()
        assert (root / "ground_truth.json").exists()
        assert list((root / "repository").glob("*.schema"))
        assert list((root / "queries").glob("*.schema"))

    def test_round_trip_preserves_counts(self, small_workload, tmp_path):
        root = save_collection(small_workload.suite, tmp_path / "col")
        loaded = load_collection(root)
        assert len(loaded.repository) == len(small_workload.repository)
        assert len(loaded) == len(small_workload.suite)
        assert loaded.relevant_size == small_workload.relevant_size

    def test_round_trip_preserves_ground_truth_keys(
        self, small_workload, tmp_path
    ):
        root = save_collection(small_workload.suite, tmp_path / "col")
        loaded = load_collection(root)
        original_keys = {
            m.key for m in small_workload.suite.ground_truth.mappings
        }
        loaded_keys = {m.key for m in loaded.ground_truth.mappings}
        assert loaded_keys == original_keys

    def test_loaded_collection_is_matchable(self, small_workload, tmp_path):
        from repro.core.measures import measure
        from repro.matching import ExhaustiveMatcher

        root = save_collection(small_workload.suite, tmp_path / "col")
        loaded = load_collection(root)
        matcher = ExhaustiveMatcher(small_workload.objective)
        scenario = loaded.scenarios[0]
        answers = matcher.match(scenario.query, loaded.repository, 0.2)
        counts = measure(answers, scenario.ground_truth.mappings)
        assert counts.answers == len(answers)


class TestErrors:
    def test_missing_meta_rejected(self, tmp_path):
        with pytest.raises(GroundTruthError, match="not a test collection"):
            load_collection(tmp_path)

    def test_unsupported_format_rejected(self, small_workload, tmp_path):
        root = save_collection(small_workload.suite, tmp_path / "col")
        meta = json.loads((root / "meta.json").read_text())
        meta["format"] = 99
        (root / "meta.json").write_text(json.dumps(meta))
        with pytest.raises(GroundTruthError, match="unsupported"):
            load_collection(root)

    def test_missing_ground_truth_entry_rejected(
        self, small_workload, tmp_path
    ):
        root = save_collection(small_workload.suite, tmp_path / "col")
        truth = json.loads((root / "ground_truth.json").read_text())
        first_key = sorted(truth)[0]
        del truth[first_key]
        (root / "ground_truth.json").write_text(json.dumps(truth))
        with pytest.raises(GroundTruthError, match="no ground truth"):
            load_collection(root)

    def test_invalid_target_rejected(self, small_workload, tmp_path):
        root = save_collection(small_workload.suite, tmp_path / "col")
        truth = json.loads((root / "ground_truth.json").read_text())
        first_key = sorted(truth)[0]
        truth[first_key][0][1] = [99999]
        (root / "ground_truth.json").write_text(json.dumps(truth))
        with pytest.raises(GroundTruthError, match="invalid"):
            load_collection(root)

"""Unit tests for system runs and end-to-end bounds validation."""

import pytest

from repro.core.thresholds import ThresholdSchedule
from repro.errors import BoundsError, NotASubsetError
from repro.evaluation.validation import run_system, validate_improvement
from repro.matching import BeamMatcher, ExhaustiveMatcher
from repro.matching.objective import ObjectiveFunction, ObjectiveWeights
from repro.matching.similarity.name import NameSimilarity


class TestRunSystem:
    def test_profile_and_sizes_consistent(self, small_workload, original_run):
        assert original_run.name == "exhaustive"
        assert original_run.profile.answer_sizes() == list(
            original_run.sizes.sizes
        )

    def test_relevant_matches_suite(self, small_workload, original_run):
        assert original_run.profile.relevant == small_workload.relevant_size

    def test_counts_monotone(self, original_run):
        sizes = original_run.profile.answer_sizes()
        assert sizes == sorted(sizes)


class TestValidateImprovement:
    def test_beam_validation_sound(self, original_run, beam_run):
        validation = validate_improvement(original_run, beam_run)
        assert validation.sound
        assert validation.containment.all_contained

    def test_all_improvements_contained(self, original_run, improvement_runs):
        for name, run in improvement_runs.items():
            validation = validate_improvement(original_run, run)
            assert validation.sound, f"{name} escaped its band"

    def test_ratio_curve_monotone_relationship(self, original_run, beam_run):
        validation = validate_improvement(original_run, beam_run)
        for ratio in validation.ratio.ratios():
            assert 0 <= ratio <= 1

    def test_bounds_bracket_actual_counts(self, original_run, improvement_runs):
        for run in improvement_runs.values():
            validation = validate_improvement(original_run, run)
            for entry, actual in zip(
                validation.bounds, run.profile.counts
            ):
                assert entry.worst.correct <= actual.correct <= entry.best.correct

    def test_random_curve_between_bounds(self, original_run, beam_run):
        validation = validate_improvement(original_run, beam_run)
        for entry in validation.bounds:
            assert (
                entry.worst.correct
                <= entry.random_correct
                <= entry.best.correct
            )

    def test_schedule_mismatch_rejected(self, small_workload, original_run):
        other_schedule = ThresholdSchedule([0.1])
        improved = run_system(
            BeamMatcher(small_workload.objective, beam_width=4),
            small_workload.suite,
            other_schedule,
        )
        with pytest.raises(BoundsError, match="schedule"):
            validate_improvement(original_run, improved)

    def test_different_objective_rejected(self, small_workload, original_run):
        # a matcher with different weights produces different scores; the
        # subset/score check must catch it
        rogue_objective = ObjectiveFunction(
            NameSimilarity(small_workload.thesaurus),
            ObjectiveWeights(structure=0.5),
        )
        rogue = run_system(
            ExhaustiveMatcher(rogue_objective),
            small_workload.suite,
            small_workload.schedule,
        )
        with pytest.raises(NotASubsetError):
            validate_improvement(original_run, rogue)

    def test_exhaustive_vs_itself_collapses(self, original_run):
        validation = validate_improvement(original_run, original_run)
        for entry, counts in zip(
            validation.bounds, original_run.profile.counts
        ):
            assert entry.best.correct == counts.correct
            assert entry.worst.correct == counts.correct

"""Unit tests for the concept-provenance ground truth oracle."""

import pytest

from repro.errors import GroundTruthError
from repro.evaluation.ground_truth import GroundTruth, enumerate_ground_truth
from repro.schema.model import Schema, SchemaElement
from repro.schema.repository import SchemaRepository


def schema_with(concepts: dict[str, str], schema_id: str) -> Schema:
    root = SchemaElement("root", concept="c:root")
    for name, concept in concepts.items():
        root.add_child(SchemaElement(name, concept=concept))
    return Schema(schema_id, root)


def query_single(concept: str) -> Schema:
    return Schema("q", SchemaElement("anything", concept=concept))


class TestEnumerateGroundTruth:
    def test_single_element_query(self):
        repo = SchemaRepository(
            "r",
            [
                schema_with({"a": "c:x", "b": "c:y"}, "s1"),
                schema_with({"c": "c:x"}, "s2"),
            ],
        )
        truth = enumerate_ground_truth(query_single("c:x"), repo)
        assert len(truth) == 2  # one in each schema

    def test_concept_absent_from_repository(self):
        repo = SchemaRepository("r", [schema_with({"a": "c:x"}, "s1")])
        truth = enumerate_ground_truth(query_single("c:none"), repo)
        assert len(truth) == 0

    def test_multi_element_cartesian(self):
        repo = SchemaRepository(
            "r", [schema_with({"a": "c:x", "b": "c:x", "c": "c:y"}, "s1")]
        )
        root = SchemaElement("q", concept="c:root")
        root.add_child(SchemaElement("one", concept="c:x"))
        root.add_child(SchemaElement("two", concept="c:y"))
        query = Schema("q", root)
        truth = enumerate_ground_truth(query, repo)
        # root -> root (1 way), one -> {a,b}, two -> {c} => 2 mappings
        assert len(truth) == 2

    def test_injectivity_enforced(self):
        # both query elements need c:x but the schema has only one
        repo = SchemaRepository("r", [schema_with({"a": "c:x"}, "s1")])
        root = SchemaElement("q", concept="c:x")
        root.add_child(SchemaElement("one", concept="c:x"))
        query = Schema("q", root)
        # root needs c:x too; only one c:x exists besides... 'a' is c:x and
        # root of s1 is c:root => no injective full assignment
        assert len(enumerate_ground_truth(query, repo)) == 0

    def test_missing_provenance_rejected(self):
        repo = SchemaRepository("r", [schema_with({"a": "c:x"}, "s1")])
        query = Schema("q", SchemaElement("unlabelled"))
        with pytest.raises(GroundTruthError, match="provenance"):
            enumerate_ground_truth(query, repo)

    def test_mappings_reference_matching_concepts(self):
        repo = SchemaRepository(
            "r", [schema_with({"a": "c:x", "b": "c:x"}, "s1")]
        )
        truth = enumerate_ground_truth(query_single("c:x"), repo)
        for mapping in truth:
            assert all(t.concept == "c:x" for t in mapping.targets)


class TestGroundTruthContainer:
    def test_membership(self):
        repo = SchemaRepository("r", [schema_with({"a": "c:x"}, "s1")])
        truth = enumerate_ground_truth(query_single("c:x"), repo)
        mapping = next(iter(truth))
        assert mapping in truth

    def test_union_disjoint(self):
        repo = SchemaRepository("r", [schema_with({"a": "c:x"}, "s1")])
        truth1 = enumerate_ground_truth(query_single("c:x"), repo)
        query2 = Schema("q2", SchemaElement("z", concept="c:x"))
        truth2 = enumerate_ground_truth(query2, repo)
        union = truth1.union(truth2)
        assert len(union) == 2

    def test_union_overlap_rejected(self):
        repo = SchemaRepository("r", [schema_with({"a": "c:x"}, "s1")])
        truth = enumerate_ground_truth(query_single("c:x"), repo)
        with pytest.raises(GroundTruthError, match="overlap"):
            truth.union(truth)

    def test_union_all_empty_rejected(self):
        with pytest.raises(GroundTruthError):
            GroundTruth.union_all([])

"""Test subpackage."""

"""Unit tests for workload construction."""

from dataclasses import replace

from repro.evaluation.workloads import (
    WorkloadConfig,
    build_workload,
    small_config,
)


class TestWorkloadConfig:
    def test_schedule_derived_from_deltas(self):
        config = WorkloadConfig(delta_start=0.1, delta_stop=0.3, delta_count=3)
        assert list(config.schedule()) == [0.1, 0.2, 0.3]

    def test_scaled_down(self):
        scaled = WorkloadConfig().scaled(0.25)
        assert scaled.num_schemas == 10
        assert scaled.num_queries == 3

    def test_scaled_floor(self):
        scaled = WorkloadConfig().scaled(0.0)
        assert scaled.num_schemas >= 2
        assert scaled.num_queries >= 1

    def test_small_config_is_smaller(self):
        assert small_config().num_schemas < WorkloadConfig().num_schemas

    def test_hashable_for_caching(self):
        assert hash(WorkloadConfig()) == hash(WorkloadConfig())


class TestBuildWorkload:
    def test_deterministic(self, small_workload):
        again = build_workload(small_config())
        assert again.relevant_size == small_workload.relevant_size
        assert [s.schema_id for s in again.repository] == [
            s.schema_id for s in small_workload.repository
        ]

    def test_components_wired(self, small_workload):
        assert small_workload.objective.name_similarity.thesaurus is (
            small_workload.thesaurus
        )
        assert small_workload.schedule == small_workload.config.schedule()

    def test_different_seed_different_workload(self, small_workload):
        other = build_workload(
            replace(small_config(), repository_seed=999, query_seed=1000)
        )
        assert (
            other.suite.ground_truth.mappings
            != small_workload.suite.ground_truth.mappings
        )

    def test_default_config_used_when_none(self):
        # just checks the call path; the default workload itself is heavy
        # and exercised by the experiment tests
        config = small_config()
        workload = build_workload(config)
        assert workload.config == config

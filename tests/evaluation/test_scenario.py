"""Unit tests for scenario construction and suites."""

import pytest

from repro.errors import GroundTruthError
from repro.evaluation.scenario import ScenarioSuite, build_scenarios
from repro.matching import ExhaustiveMatcher
from repro.schema.generator import GeneratorConfig, generate_repository


@pytest.fixture(scope="module")
def repository():
    return generate_repository(GeneratorConfig(num_schemas=8, seed=77))


@pytest.fixture(scope="module")
def suite(repository):
    return build_scenarios(repository, num_queries=3, query_size=3, seed=5)


class TestBuildScenarios:
    def test_count(self, suite):
        assert len(suite) == 3

    def test_unique_query_ids(self, suite):
        ids = [s.query.schema_id for s in suite]
        assert len(set(ids)) == 3

    def test_ground_truth_nonempty(self, suite):
        for scenario in suite:
            assert scenario.relevant_size >= 1

    def test_queries_carry_provenance(self, suite):
        for scenario in suite:
            assert all(e.concept is not None for e in scenario.query)

    def test_deterministic(self, repository):
        a = build_scenarios(repository, num_queries=2, seed=9)
        b = build_scenarios(repository, num_queries=2, seed=9)
        assert [s.query.schema_id for s in a] == [s.query.schema_id for s in b]
        assert a.relevant_size == b.relevant_size

    def test_invalid_num_queries(self, repository):
        with pytest.raises(GroundTruthError):
            build_scenarios(repository, num_queries=0)

    def test_unreachable_min_relevant(self, repository):
        with pytest.raises(GroundTruthError, match="could not build"):
            build_scenarios(
                repository, num_queries=2, seed=5, min_relevant=10_000
            )


class TestScenarioSuite:
    def test_pooled_relevant_is_sum(self, suite):
        assert suite.relevant_size == sum(s.relevant_size for s in suite)

    def test_duplicate_query_ids_rejected(self, suite, repository):
        scenario = suite.scenarios[0]
        with pytest.raises(GroundTruthError, match="unique"):
            ScenarioSuite(repository, [scenario, scenario])

    def test_empty_suite_rejected(self, repository):
        with pytest.raises(GroundTruthError):
            ScenarioSuite(repository, [])

    def test_run_pools_answers_across_queries(self, suite, repository):
        from repro.matching.objective import ObjectiveFunction
        from repro.matching.similarity.name import NameSimilarity

        matcher = ExhaustiveMatcher(ObjectiveFunction(NameSimilarity()))
        pooled = suite.run(matcher, 0.25)
        per_query_total = 0
        for scenario in suite:
            per_query_total += len(matcher.match(scenario.query, repository, 0.25))
        assert len(pooled) == per_query_total

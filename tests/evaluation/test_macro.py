"""Unit tests for per-query (macro) evaluation and bounds."""

from fractions import Fraction

import pytest

from repro.errors import BoundsError
from repro.evaluation.macro import (
    macro_bound_rows,
    macro_pr_rows,
    per_query_bounds,
    per_query_runs,
)
from repro.matching import BeamMatcher, ExhaustiveMatcher


@pytest.fixture(scope="module")
def macro_setup(small_workload):
    original = per_query_runs(
        ExhaustiveMatcher(small_workload.objective),
        small_workload.suite,
        small_workload.schedule,
    )
    improved = per_query_runs(
        BeamMatcher(small_workload.objective, beam_width=8),
        small_workload.suite,
        small_workload.schedule,
    )
    return original, improved


class TestPerQueryRuns:
    def test_one_run_per_query(self, small_workload, macro_setup):
        original, _ = macro_setup
        assert len(original) == len(small_workload.suite)

    def test_per_query_relevant_sums_to_pooled(self, small_workload, macro_setup):
        original, _ = macro_setup
        assert (
            sum(run.profile.relevant for run in original)
            == small_workload.relevant_size
        )

    def test_per_query_sizes_sum_to_micro(
        self, small_workload, macro_setup, original_run
    ):
        original, _ = macro_setup
        for index in range(len(small_workload.schedule)):
            per_query_total = sum(
                run.profile.counts[index].answers for run in original
            )
            assert per_query_total == original_run.profile.counts[index].answers


class TestPerQueryBounds:
    def test_bounds_contain_per_query_truth(self, macro_setup):
        original, improved = macro_setup
        bounds = per_query_bounds(original, improved)
        for (query_id, query_bounds), improved_run in zip(bounds, improved):
            for entry, actual in zip(query_bounds, improved_run.profile.counts):
                assert (
                    entry.worst.correct <= actual.correct <= entry.best.correct
                ), query_id

    def test_misaligned_runs_rejected(self, macro_setup):
        original, improved = macro_setup
        with pytest.raises(BoundsError, match="not aligned"):
            per_query_bounds(original, improved[:-1])

    def test_query_mismatch_rejected(self, macro_setup):
        original, improved = macro_setup
        reordered = list(reversed(improved))
        with pytest.raises(BoundsError, match="query mismatch"):
            per_query_bounds(original, reordered)


class TestMacroRows:
    def test_macro_pr_rows_shape(self, small_workload, macro_setup):
        original, _ = macro_setup
        rows = macro_pr_rows(original)
        assert len(rows) == len(small_workload.schedule)
        for _delta, precision, recall in rows:
            assert 0 <= precision <= 1
            assert 0 <= recall <= 1

    def test_macro_differs_from_micro_in_general(
        self, macro_setup, original_run
    ):
        original, _ = macro_setup
        macro = macro_pr_rows(original)
        micro_final = original_run.profile.counts[-1]
        micro_precision = float(micro_final.precision_or(Fraction(1)))
        # not a theorem, but on this heterogeneous workload they differ
        assert abs(macro[-1][1] - micro_precision) > 1e-6

    def test_macro_bounds_bracket_macro_truth(self, macro_setup):
        original, improved = macro_setup
        bounds = per_query_bounds(original, improved)
        bound_rows = macro_bound_rows(bounds)
        truth_rows = macro_pr_rows(improved)
        for (d1, p_worst, p_best, r_worst, r_best), (d2, p, r) in zip(
            bound_rows, truth_rows
        ):
            assert d1 == d2
            assert p_worst - 1e-9 <= p <= p_best + 1e-9
            assert r_worst - 1e-9 <= r <= r_best + 1e-9

    def test_empty_inputs_rejected(self):
        with pytest.raises(BoundsError):
            macro_pr_rows([])
        with pytest.raises(BoundsError):
            macro_bound_rows([])

"""Unit tests for TREC-style pooling."""

import pytest

from repro.core.answers import AnswerSet
from repro.errors import GroundTruthError
from repro.evaluation.pooling import build_pool, pooled_counts, pooled_relevant_size


def answers_a():
    return AnswerSet.from_pairs([(f"a{i}", i / 10) for i in range(10)])


def answers_b():
    pairs = [(f"a{i}", i / 10) for i in range(5)]  # overlaps with system A
    pairs += [(f"b{i}", (i + 0.5) / 10) for i in range(5)]
    return AnswerSet.from_pairs(pairs)


class TestBuildPool:
    def test_union_of_tops(self):
        pool = build_pool([answers_a(), answers_b()], depth=3)
        assert pool == {"a0", "a1", "a2", "b0"}

    def test_depth_larger_than_sets(self):
        pool = build_pool([answers_a()], depth=100)
        assert len(pool) == 10

    def test_invalid_depth(self):
        with pytest.raises(GroundTruthError):
            build_pool([answers_a()], depth=0)


class TestPooledJudging:
    def test_relevant_size_counts_pool_truth_overlap(self):
        pool = frozenset({"a0", "a1", "b0"})
        assert pooled_relevant_size(pool, {"a1", "b0", "hidden"}) == 2

    def test_unpooled_answers_count_incorrect(self):
        pool = frozenset({"a0"})
        counts = pooled_counts(answers_a(), pool, {"a0", "a5"})
        # a5 is relevant but unpooled -> not judged correct
        assert counts.correct == 1
        assert counts.answers == 10

    def test_pooled_relevant_used_as_h(self):
        pool = frozenset({"a0", "a1"})
        counts = pooled_counts(answers_a(), pool, {"a0", "a5"})
        assert counts.relevant == 1  # only a0 is pooled-and-relevant

    def test_pooling_overestimates_recall(self):
        """The characteristic bias: pooled recall >= true recall."""
        from fractions import Fraction

        truth = {"a0", "a5", "zz-never-retrieved"}
        pool = build_pool([answers_a()], depth=6)
        counts = pooled_counts(answers_a(), pool, truth)
        pooled_recall = counts.recall
        true_recall = Fraction(2, 3)  # a0, a5 of 3 relevant
        assert pooled_recall is not None and pooled_recall >= true_recall

"""Unit tests for oracle and noisy judges."""

from fractions import Fraction

import pytest

from repro.core.answers import AnswerSet
from repro.evaluation.ground_truth import GroundTruth
from repro.evaluation.judge import NoisyJudge, OracleJudge


def truth(items) -> GroundTruth:
    return GroundTruth("q", frozenset(items))


class TestOracleJudge:
    def test_is_correct(self):
        judge = OracleJudge(truth({"a", "b"}))
        assert judge.is_correct("a")
        assert not judge.is_correct("z")

    def test_relevant_size(self):
        assert OracleJudge(truth({"a", "b"})).relevant_size() == 2

    def test_judge_answer_set(self):
        judge = OracleJudge(truth({"a", "b", "c"}))
        answers = AnswerSet.from_pairs([("a", 0.1), ("z", 0.2)])
        counts = judge.judge_answer_set(answers)
        assert counts.answers == 2
        assert counts.correct == 1
        assert counts.relevant == 3
        assert counts.precision == Fraction(1, 2)

    def test_judged_items(self):
        judge = OracleJudge(truth({"a"}))
        answers = AnswerSet.from_pairs([("a", 0.1), ("z", 0.2)])
        assert judge.judged_items(answers) == frozenset({"a"})


class TestNoisyJudge:
    def test_zero_flip_equals_oracle(self):
        ground = truth({"a", "b"})
        noisy = NoisyJudge(ground, flip_probability=0.0, seed=1)
        oracle = OracleJudge(ground)
        answers = AnswerSet.from_pairs([("a", 0.1), ("z", 0.2)])
        assert (
            noisy.judge_answer_set(answers).correct
            == oracle.judge_answer_set(answers).correct
        )

    def test_full_flip_inverts(self):
        ground = truth({"a"})
        noisy = NoisyJudge(ground, flip_probability=1.0, seed=1)
        assert not noisy.is_correct("a")
        assert noisy.is_correct("z")

    def test_verdict_deterministic_per_item(self):
        noisy = NoisyJudge(truth({"a"}), flip_probability=0.5, seed=9)
        first = [noisy.is_correct(f"item{i}") for i in range(20)]
        second = [noisy.is_correct(f"item{i}") for i in range(20)]
        assert first == second

    def test_flip_rate_approximate(self):
        ground = truth({f"g{i}" for i in range(200)})
        noisy = NoisyJudge(ground, flip_probability=0.3, seed=3)
        flipped = sum(1 for item in ground if not noisy.is_correct(item))
        assert 0.15 <= flipped / 200 <= 0.45

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            NoisyJudge(truth({"a"}), flip_probability=1.2, seed=1)

    def test_judged_relevant_tracks_flips(self):
        ground = truth({f"g{i}" for i in range(50)})
        noisy = NoisyJudge(ground, flip_probability=0.5, seed=7)
        counts = noisy.judge_answer_set(AnswerSet.empty())
        assert counts.relevant < 50  # flipped-away members shrink judged H


class TestJudgeProfile:
    def test_counts_per_threshold(self):
        from repro.evaluation.judge import judge_profile

        judge = OracleJudge(truth({"a", "c"}))
        answers = AnswerSet.from_pairs([("a", 0.1), ("b", 0.2), ("c", 0.3)])
        counts = judge_profile(judge, answers, [0.15, 0.35])
        assert [c.answers for c in counts] == [1, 3]
        assert [c.correct for c in counts] == [1, 2]

    def test_descending_thresholds_rejected(self):
        from repro.errors import GroundTruthError
        from repro.evaluation.judge import judge_profile

        judge = OracleJudge(truth({"a"}))
        answers = AnswerSet.from_pairs([("a", 0.1), ("b", 0.2)])
        with pytest.raises(GroundTruthError, match="ascending"):
            judge_profile(judge, answers, [0.3, 0.1])

"""Shared fixtures: one small workload and its system runs per session.

Matching runs are the expensive part of the suite; everything that can
share them does, through session-scoped fixtures.  All fixtures are
deterministic (seeded), so test outcomes are stable run to run.
"""

from __future__ import annotations

import pytest

from repro.evaluation import build_workload, run_system, small_config
from repro.matching import (
    BeamMatcher,
    ClusteringMatcher,
    ExhaustiveMatcher,
    TopKCandidateMatcher,
)


@pytest.fixture(scope="session")
def small_workload():
    """The reduced deterministic workload (10 schemas, 4 queries)."""
    return build_workload(small_config())


@pytest.fixture(scope="session")
def original_run(small_workload):
    """Judged run of the exhaustive system S1 on the small workload."""
    return run_system(
        ExhaustiveMatcher(small_workload.objective),
        small_workload.suite,
        small_workload.schedule,
    )


@pytest.fixture(scope="session")
def beam_run(small_workload):
    return run_system(
        BeamMatcher(small_workload.objective, beam_width=8),
        small_workload.suite,
        small_workload.schedule,
    )


@pytest.fixture(scope="session")
def clustering_run(small_workload):
    return run_system(
        ClusteringMatcher(small_workload.objective, clusters_per_element=2),
        small_workload.suite,
        small_workload.schedule,
    )


@pytest.fixture(scope="session")
def topk_run(small_workload):
    return run_system(
        TopKCandidateMatcher(small_workload.objective, candidates_per_element=4),
        small_workload.suite,
        small_workload.schedule,
    )


@pytest.fixture(scope="session")
def improvement_runs(beam_run, clustering_run, topk_run):
    """All improvements, keyed by name."""
    return {
        "beam": beam_run,
        "clustering": clustering_run,
        "topk": topk_run,
    }

"""Shared fixtures: one small workload and its system runs per session.

Matching runs are the expensive part of the suite; everything that can
share them does, through session-scoped fixtures.  All fixtures are
deterministic (seeded), so test outcomes are stable run to run.

Two suite-wide knobs live here as well:

* **Hypothesis profiles** — CI runs under the pinned ``ci`` profile
  (``HYPOTHESIS_PROFILE=ci``): derandomised, so example selection is a
  function of the test alone and a red run reproduces locally from the
  printed blob; no deadline, because shared runners make per-example
  wall-clock a flake source, not a signal.
* **``network`` opt-out** — tests marked ``network`` open local
  sockets (loopback only).  ``REPRO_NO_NETWORK=1`` skips them for
  sandboxes where even loopback listeners are off-limits.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import settings

from repro.evaluation import build_workload, run_system, small_config
from repro.matching import (
    BeamMatcher,
    ClusteringMatcher,
    ExhaustiveMatcher,
    TopKCandidateMatcher,
)

settings.register_profile(
    "ci", deadline=None, derandomize=True, print_blob=True
)
settings.register_profile("dev", deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


def pytest_addoption(parser):
    # The chaos soak harness (tests/soak) — all knobs optional; without
    # them the smoke grid runs its fixed seeds at smoke length.
    group = parser.getgroup("soak", "chaos soak harness (tests/soak)")
    group.addoption(
        "--soak-seed",
        type=int,
        default=None,
        help="replay exactly one soak schedule with this seed "
        "(the one-command repro printed by a failing soak run)",
    )
    group.addoption(
        "--soak-waves",
        type=int,
        default=None,
        help="waves per soak schedule (default: 3 for the smoke grid, "
        "8 for --soak-schedules runs)",
    )
    group.addoption(
        "--soak-schedules",
        type=int,
        default=None,
        help="run a long soak of N randomized schedules (the nightly "
        "CI job; skipped by default)",
    )
    group.addoption(
        "--soak-log",
        default=None,
        help="append the event log of failing schedules to this file "
        "(published as a CI artifact)",
    )


def pytest_collection_modifyitems(config, items):
    if os.environ.get("REPRO_NO_NETWORK") != "1":
        return
    skip = pytest.mark.skip(
        reason="socket tests disabled (REPRO_NO_NETWORK=1)"
    )
    for item in items:
        if "network" in item.keywords:
            item.add_marker(skip)


@pytest.fixture(scope="session")
def small_workload():
    """The reduced deterministic workload (10 schemas, 4 queries)."""
    return build_workload(small_config())


@pytest.fixture(scope="session")
def original_run(small_workload):
    """Judged run of the exhaustive system S1 on the small workload."""
    return run_system(
        ExhaustiveMatcher(small_workload.objective),
        small_workload.suite,
        small_workload.schedule,
    )


@pytest.fixture(scope="session")
def beam_run(small_workload):
    return run_system(
        BeamMatcher(small_workload.objective, beam_width=8),
        small_workload.suite,
        small_workload.schedule,
    )


@pytest.fixture(scope="session")
def clustering_run(small_workload):
    return run_system(
        ClusteringMatcher(small_workload.objective, clusters_per_element=2),
        small_workload.suite,
        small_workload.schedule,
    )


@pytest.fixture(scope="session")
def topk_run(small_workload):
    return run_system(
        TopKCandidateMatcher(small_workload.objective, candidates_per_element=4),
        small_workload.suite,
        small_workload.schedule,
    )


@pytest.fixture(scope="session")
def improvement_runs(beam_run, clustering_run, topk_run):
    """All improvements, keyed by name."""
    return {
        "beam": beam_run,
        "clustering": clustering_run,
        "topk": topk_run,
    }

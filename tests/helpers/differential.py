"""The differential-testing harness behind the byte-identity suite.

The matching stack carries five process-wide A/B switches, each pairing
an optimised (or refactored) execution path with the pure-python code
kept as its executable specification:

========== ====================================================== ==========
toggle     path it disables                                       spec path
========== ====================================================== ==========
substrate  precomputed score matrices + exact candidate pruning   direct per-pair scoring
kernel     interned label-universe cost rows + matrix gathers     per-matrix similarity
flat-search flattened explicit-stack branch-and-bound             recursive generator
numpy      vectorised gathers / sorts / bounds / top-k cuts       python loops
backends   the pluggable-backend seam of the default objective    direct NameSimilarity call
========== ====================================================== ==========

The byte-identity contract says any *combination* of these switches
must produce byte-identical answer sets — same mappings, same score
floats, same order.  This module is the one place that contract is
mechanised: a seeded workload generator, the canonical answer encoding,
a runner that matches under any set of disabled toggles, and the
all-combinations assertion the property tests call.

Runs happen under
:func:`~repro.matching.similarity.vectors.vector_thresholds` forced to
zero, so the vector forms actually execute on hypothesis-sized
workloads instead of ducking under their adaptive dispatch floors.

Each run builds a **fresh** :class:`ObjectiveFunction` (the workload's
memoised :class:`NameSimilarity` is shared — it is a pure value cache
both paths consume), so no run can serve another's cached matrices and
blunt the A/B.
"""

from __future__ import annotations

from contextlib import ExitStack
from dataclasses import dataclass
from itertools import combinations

from repro.matching import (
    backends_disabled,
    flat_search_disabled,
    kernel_disabled,
    make_matcher,
    numpy_disabled,
    substrate_disabled,
)
from repro.matching.objective import ObjectiveFunction
from repro.matching.similarity.name import NameSimilarity, Thesaurus
from repro.matching.similarity.vectors import vector_thresholds
from repro.schema.generator import GeneratorConfig, generate_repository
from repro.schema.mutations import extract_personal_schema
from repro.schema.vocabulary import builtin_domains
from repro.util import rng

__all__ = [
    "ALL_TOGGLES",
    "DifferentialWorkload",
    "MATCHERS",
    "THRESHOLDS",
    "assert_combinations_identical",
    "canonical",
    "make_workload",
    "match_canonical",
    "toggle_subsets",
]

#: the named A/B switches, each mapping to its "run the spec" context
TOGGLE_CONTEXTS = {
    "substrate": substrate_disabled,
    "kernel": kernel_disabled,
    "flat-search": flat_search_disabled,
    "numpy": numpy_disabled,
    "backends": backends_disabled,
}
ALL_TOGGLES = tuple(TOGGLE_CONTEXTS)

#: the matcher grid of the differential property tests — every system
#: of the reproduction, with small non-default parameters
MATCHERS = [
    ("exhaustive", {}),
    ("beam", {"beam_width": 4}),
    ("clustering", {"clusters_per_element": 2}),
    ("topk", {"candidates_per_element": 3}),
    ("hybrid", {"clusters_per_element": 2, "beam_width": 4}),
]

#: the threshold sweep: below, inside and above the interesting regime
THRESHOLDS = (0.05, 0.15, 0.3, 0.45)


@dataclass(frozen=True)
class DifferentialWorkload:
    """A seeded repository, its query set, and the shared name metric."""

    repository: object
    queries: tuple
    name_similarity: NameSimilarity

    def objective(self) -> ObjectiveFunction:
        """A fresh objective (cold substrate) over the shared metric."""
        return ObjectiveFunction(self.name_similarity)


def make_workload(
    repo_seed: int,
    num_schemas: int = 3,
    query_seed: int = 0,
    num_queries: int = 1,
    min_size: int = 5,
    max_size: int = 9,
    query_size: int = 3,
    with_thesaurus: bool = False,
) -> DifferentialWorkload:
    """A deterministic differential workload from two seeds.

    Mirrors the construction the substrate/kernel property tests always
    used: a generated repository, personal-schema queries extracted from
    its own schemas (so matches exist), optionally a thesaurus over the
    builtin domain vocabularies.
    """
    repository = generate_repository(
        GeneratorConfig(
            num_schemas=num_schemas,
            min_size=min_size,
            max_size=max_size,
            seed=repo_seed,
        )
    )
    thesaurus = (
        Thesaurus.from_vocabularies(
            builtin_domains().values(), coverage=0.6, seed=repo_seed
        )
        if with_thesaurus
        else None
    )
    queries = tuple(
        extract_personal_schema(
            rng.make_tagged(query_seed + index),
            repository.schemas()[(query_seed + index) % num_schemas],
            None,
            target_size=query_size,
            schema_id=f"prop-differential-query-{index}",
        )
        for index in range(num_queries)
    )
    return DifferentialWorkload(repository, queries, NameSimilarity(thesaurus))


def canonical(answer_set) -> bytes:
    """The canonical byte encoding of one answer set.

    ``repr`` of the ordered ``(item key, score)`` pairs — float bits
    count (``repr`` round-trips doubles exactly), answer order counts.
    """
    return repr(
        [(answer.item.key, answer.score) for answer in answer_set.answers()]
    ).encode()


def match_canonical(
    matcher_name: str,
    params: dict,
    workload: DifferentialWorkload,
    delta: float,
    disabled: tuple[str, ...] = (),
) -> tuple[bytes, ...]:
    """Match every workload query under the given disabled toggles.

    A fresh matcher over a fresh objective per call; returns one
    canonical encoding per query.  Unknown toggle names raise
    ``KeyError`` — a misspelled toggle must not silently test nothing.
    """
    matcher = make_matcher(matcher_name, workload.objective(), **params)
    with ExitStack() as stack:
        stack.enter_context(vector_thresholds(0, 0))
        for toggle in disabled:
            stack.enter_context(TOGGLE_CONTEXTS[toggle]())
        return tuple(
            canonical(matcher.match(query, workload.repository, delta))
            for query in workload.queries
        )


def toggle_subsets(toggles: tuple[str, ...] = ALL_TOGGLES):
    """Every subset of ``toggles``, smallest first (all-on ... all-off)."""
    for size in range(len(toggles) + 1):
        yield from combinations(toggles, size)


def assert_combinations_identical(
    matcher_name: str,
    params: dict,
    workload: DifferentialWorkload,
    thresholds: tuple[float, ...] = THRESHOLDS,
    toggles: tuple[str, ...] = ALL_TOGGLES,
) -> None:
    """The contract: every toggle combination, byte-identical answers.

    The reference run disables **all** the given toggles (the full
    pure-python specification); every other subset — including the
    empty one, all optimisations on — must reproduce it byte for byte
    at every threshold.  Failure messages carry (matcher, threshold,
    disabled subset) so a shrunk hypothesis example names the exact
    combination that diverged.
    """
    for delta in thresholds:
        reference = match_canonical(
            matcher_name, params, workload, delta, disabled=toggles
        )
        for subset in toggle_subsets(toggles):
            if subset == toggles:
                continue
            observed = match_canonical(
                matcher_name, params, workload, delta, disabled=subset
            )
            assert observed == reference, (
                matcher_name,
                delta,
                {"disabled": subset},
            )

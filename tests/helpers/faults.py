"""The fault-injection harness behind the distributed conformance suite.

Two fault surfaces, one helper each:

* :class:`TamperProxy` sits between a coordinator and a
  :class:`~repro.matching.remote.WorkerServer` as a byte-level TCP
  relay and damages the stream on command — :func:`cut_after` closes
  both sides once N bytes have crossed (a worker dying mid-frame, a
  truncated frame), :func:`flip_byte` inverts one byte at a stream
  offset (bit rot, tampering).  Faults are per-direction: ``downstream``
  damages worker→coordinator bytes, ``upstream`` coordinator→worker.
  The relay also injects *liveness* faults: ``delay_ms`` sleeps before
  forwarding every chunk (a slow link — :class:`DelayProxy` is the
  latency-only spelling), and ``stall_after`` swallows every byte past
  that per-direction offset while keeping the connection **open** (a
  hung peer / one-way partition — the fault deadlines must convert
  into a loud timeout, since no EOF ever arrives).  The digest framing
  of :mod:`repro.matching.remote` must turn every damage fault into a
  loud :class:`~repro.errors.TransportError` — never a silently wrong
  answer.

* :class:`DeltaLogFaults` is a scriptable
  :class:`~repro.matching.replication.ReplicaGroup` delivery hook that
  drops, duplicates, holds, or delays specific ``(replica, sequence)``
  deliveries.  Dropping record *k* and delivering *k+1* manufactures a
  log gap (the replica must buffer and refuse to serve); duplicating
  exercises the idempotence discipline; :meth:`release` delivers held
  records late — in any order the test scripts — exercising reorder and
  delayed delivery; :attr:`delay` sleeps a delivery in place, which
  past the group's ``settle_timeout`` exercises backpressure (the
  replica lags and must be caught up, not waited on).

Both are deterministic: faults fire at exact byte offsets or exact
sequence numbers, so a failing test names the precise damage that
produced it.
"""

from __future__ import annotations

import asyncio
import socket
import threading
import time
from dataclasses import dataclass, field

from repro.matching.replication import DeltaRecord, ReplicaGroup

__all__ = [
    "ByteFault",
    "DelayProxy",
    "DeltaLogFaults",
    "TamperProxy",
    "cut_after",
    "flip_byte",
    "rewrite_frame",
]


# ---------------------------------------------------------------------------
# Byte-stream faults
# ---------------------------------------------------------------------------

@dataclass
class ByteFault:
    """One scripted fault on a byte stream, keyed by absolute offset.

    ``transform`` receives each forwarded chunk with its starting
    stream offset and returns ``(bytes to forward, keep connection)``.
    """

    def transform(self, chunk: bytes, offset: int) -> tuple[bytes, bool]:
        return chunk, True


@dataclass
class _CutAfter(ByteFault):
    at: int

    def transform(self, chunk: bytes, offset: int) -> tuple[bytes, bool]:
        if offset + len(chunk) <= self.at:
            return chunk, True
        return chunk[: max(0, self.at - offset)], False


@dataclass
class _FlipByte(ByteFault):
    at: int

    def transform(self, chunk: bytes, offset: int) -> tuple[bytes, bool]:
        if offset <= self.at < offset + len(chunk):
            index = self.at - offset
            chunk = chunk[:index] + bytes([chunk[index] ^ 0xFF]) + chunk[index + 1:]
        return chunk, True


@dataclass
class _RewriteOnce(ByteFault):
    old: bytes
    new: bytes
    _buffer: bytes = b""
    _done: bool = False

    def transform(self, chunk: bytes, offset: int) -> tuple[bytes, bool]:
        if self._done:
            return chunk, True
        self._buffer += chunk
        found = self._buffer.find(self.old)
        if found != -1:
            out = (
                self._buffer[:found]
                + self.new
                + self._buffer[found + len(self.old):]
            )
            self._done = True
            self._buffer = b""
            return out, True
        # Hold back only the bytes that could still be a prefix of
        # ``old`` spanning into the next chunk; forward the rest so the
        # stream keeps flowing while we watch for the pattern.
        keep = len(self.old) - 1
        if keep <= 0 or len(self._buffer) <= keep:
            if keep <= 0:
                out, self._buffer = self._buffer, b""
                return out, True
            return b"", True
        out = self._buffer[:-keep]
        self._buffer = self._buffer[-keep:]
        return out, True


def cut_after(at: int) -> ByteFault:
    """Forward ``at`` bytes, then drop the connection — truncation."""
    return _CutAfter(at)


def flip_byte(at: int) -> ByteFault:
    """Invert the byte at stream offset ``at`` — tampering / bit rot."""
    return _FlipByte(at)


def rewrite_frame(old: bytes, new: bytes) -> ByteFault:
    """Replace the first occurrence of ``old`` in the stream with ``new``.

    Unlike :func:`flip_byte`, the replacement can be a complete,
    correctly framed message — the tool for protocol-level faults
    (version skew, substituted ops) that must pass the digest check and
    be *refused by the peer's protocol logic*, not by the framing
    layer.  Bytes are buffered only while they could still be a prefix
    of ``old``; once replaced (or proven absent chunk by chunk) the
    relay is transparent.
    """
    return _RewriteOnce(old, new)


class TamperProxy:
    """A byte-level TCP relay that damages the stream on command.

    Listens on an ephemeral local port (read :attr:`address`) and
    relays every accepted connection to ``target``.  ``upstream``
    faults apply to client→target bytes, ``downstream`` to
    target→client bytes; offsets are absolute per connection per
    direction.  A fault that cuts the stream closes *both* sides of
    that relay, so each peer observes the mid-conversation drop.

    Liveness faults ride alongside the byte faults: ``delay_ms`` sleeps
    that long before forwarding every chunk in either direction (a slow
    link), and ``stall_after`` forwards that many bytes per direction
    and then silently swallows the rest **without closing anything** —
    the hung-peer fault: no EOF, no reset, just a connection that goes
    quiet mid-conversation.  Byte-fault offsets keep counting the
    source stream, so scripted damage stays at its exact offset even
    under stall truncation.
    """

    def __init__(
        self,
        target: tuple[str, int],
        *,
        upstream: ByteFault | None = None,
        downstream: ByteFault | None = None,
        delay_ms: float = 0.0,
        stall_after: int | None = None,
    ):
        if delay_ms < 0:
            raise ValueError(f"delay_ms must be >= 0, got {delay_ms!r}")
        if stall_after is not None and stall_after < 0:
            raise ValueError(
                f"stall_after must be >= 0, got {stall_after!r}"
            )
        self.target = target
        self.upstream = upstream or ByteFault()
        self.downstream = downstream or ByteFault()
        self.delay_ms = delay_ms
        self.stall_after = stall_after
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen()
        self.address: tuple[str, int] = self._listener.getsockname()[:2]
        self._stopping = threading.Event()
        self._threads: list[threading.Thread] = []
        self._sockets: list[socket.socket] = []
        self._lock = threading.Lock()

    def __enter__(self) -> "TamperProxy":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def start(self) -> "TamperProxy":
        accept = threading.Thread(
            target=self._accept_loop, name="tamper-proxy-accept", daemon=True
        )
        self._threads.append(accept)
        accept.start()
        return self

    def stop(self) -> None:
        self._stopping.set()
        # shutdown() wakes a thread blocked in accept(); close() alone
        # does not on Linux.
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._listener.close()
        with self._lock:
            sockets = list(self._sockets)
        for sock in sockets:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            sock.close()
        for thread in self._threads:
            thread.join(timeout=5)

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                client, _peer = self._listener.accept()
            except OSError:
                return  # listener closed by stop()
            try:
                server = socket.create_connection(self.target, timeout=10)
            except OSError:
                client.close()
                continue
            with self._lock:
                self._sockets += [client, server]
            for source, sink, fault, label in (
                (client, server, self.upstream, "up"),
                (server, client, self.downstream, "down"),
            ):
                pump = threading.Thread(
                    target=self._pump,
                    args=(source, sink, fault),
                    name=f"tamper-proxy-{label}",
                    daemon=True,
                )
                self._threads.append(pump)
                pump.start()

    def _pump(self, source: socket.socket, sink: socket.socket, fault: ByteFault) -> None:
        offset = 0
        try:
            while True:
                chunk = source.recv(65536)
                if not chunk:
                    break
                if self.delay_ms:
                    time.sleep(self.delay_ms / 1000.0)
                raw = len(chunk)
                if self.stall_after is not None:
                    if offset >= self.stall_after:
                        # the stall: swallow, keep the connection open —
                        # the peer sees silence, never an EOF
                        offset += raw
                        continue
                    if offset + raw > self.stall_after:
                        chunk = chunk[: self.stall_after - offset]
                out, keep = fault.transform(chunk, offset)
                offset += raw
                if out:
                    sink.sendall(out)
                if not keep:
                    break
        except OSError:
            pass
        finally:
            # Drop both sides: half-relayed streams are not a thing a
            # real crashed peer leaves behind.
            for sock in (source, sink):
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                sock.close()


class DelayProxy(TamperProxy):
    """A :class:`TamperProxy` that only adds latency.

    Every chunk in both directions is forwarded ``delay_ms`` late and
    otherwise untouched — the slow-worker fault.  Byte-identity is
    unaffected; only deadlines and wall-clock bounds feel it.
    """

    def __init__(self, target: tuple[str, int], *, delay_ms: float = 20.0):
        super().__init__(target, delay_ms=delay_ms)


# ---------------------------------------------------------------------------
# Delta-log delivery faults
# ---------------------------------------------------------------------------

@dataclass
class DeltaLogFaults:
    """A scriptable :class:`ReplicaGroup` delivery hook.

    Script faults by ``(replica index, sequence number)`` **before**
    the corresponding ``apply_delta`` call:

    * :attr:`drop` — the delivery never happens (later records then
      arrive as a gap and the replica must refuse to serve);
    * :attr:`duplicate` — delivered twice back to back;
    * :attr:`hold` — parked until :meth:`release`, which delivers the
      held records late (delay / reorder);
    * :attr:`delay` — delivered after sleeping that many **seconds** in
      place (a slow replica; a delay past the group's
      ``settle_timeout`` forces the replica to lag instead of stalling
      ``apply_delta``).

    :attr:`delivered` records every delivery that actually reached
    :meth:`ReplicaGroup.receive`, in order, for assertions.
    """

    drop: set[tuple[int, int]] = field(default_factory=set)
    duplicate: set[tuple[int, int]] = field(default_factory=set)
    hold: set[tuple[int, int]] = field(default_factory=set)
    delay: dict[tuple[int, int], float] = field(default_factory=dict)
    delivered: list[tuple[int, int]] = field(default_factory=list)
    _held: list[tuple[ReplicaGroup, int, DeltaRecord]] = field(
        default_factory=list
    )

    async def __call__(
        self, group: ReplicaGroup, index: int, record: DeltaRecord
    ) -> None:
        key = (index, record.sequence)
        if key in self.drop:
            return
        if key in self.hold:
            self._held.append((group, index, record))
            return
        pause = self.delay.get(key)
        if pause:
            await asyncio.sleep(pause)
        await self._deliver(group, index, record)
        if key in self.duplicate:
            await self._deliver(group, index, record)

    async def _deliver(
        self, group: ReplicaGroup, index: int, record: DeltaRecord
    ) -> None:
        self.delivered.append((index, record.sequence))
        await group.receive(index, record)

    async def release(self) -> int:
        """Deliver every held record (in hold order); returns the count."""
        held, self._held = self._held, []
        for group, index, record in held:
            await self._deliver(group, index, record)
        return len(held)

"""Shared test helpers, importable as ``helpers.*`` from any test.

``tests/`` itself is not a package (no ``__init__.py``), so pytest puts
it on ``sys.path``; this package rides on that.  Helpers hold reusable
*machinery* — fixtures stay in ``conftest.py``.
"""

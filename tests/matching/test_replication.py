"""Replica-group conformance: the delta log under hostile delivery.

The acceptance property: answers served by a
:class:`~repro.matching.replication.ReplicaGroup` are byte-identical
across replicas and to the single-node offline path — and stay that way
under every delivery fault :class:`helpers.faults.DeltaLogFaults` can
script.  Duplicated records are ignored; a dropped record leaves a gap
and the affected replica **refuses to serve** until :meth:`catch_up`
(or late delivery) closes it; reordered records buffer and drain in
sequence; a replica whose repository digest diverges from the log's
authoritative digest is refused loudly instead of answering from a
fork.
"""

from __future__ import annotations

import asyncio

import pytest

from helpers.faults import DeltaLogFaults
from repro.errors import MatchingError, ReplicationError
from repro.matching import make_matcher, replica_group
from repro.matching.replication import DeltaRecord, ReplicaGroup
from repro.schema import churn_delta


@pytest.fixture(scope="module")
def queries(small_workload):
    return [scenario.query for scenario in small_workload.suite.scenarios]


def _canonical(answer_sets) -> bytes:
    return repr(
        [
            [(answer.item.key, answer.score) for answer in answers.answers()]
            for answers in answer_sets
        ]
    ).encode()


def _run(coroutine):
    return asyncio.run(coroutine)


def _group(small_workload, replicas=2, *, delivery=None, **options):
    return replica_group(
        "exhaustive",
        small_workload.objective,
        replicas,
        0.3,
        delivery=delivery,
        cache=False,
        **options,
    )


def _offline(small_workload, queries, repository):
    matcher = make_matcher("exhaustive", small_workload.objective)
    return matcher.batch_match(queries, repository, 0.3, cache=False)


class TestReplicaGroupIdentity:
    def test_replicas_identical_to_offline_across_deltas(
        self, small_workload, queries
    ):
        """The acceptance property over a clean log."""

        async def scenario():
            group = _group(small_workload)
            await group.start(small_workload.repository)
            waves, repositories = [], []
            for step in range(3):
                if step:
                    await group.apply_delta(
                        churn_delta(group.repository, churn=0.25, seed=step)
                    )
                waves.append(
                    [await group.match_all(query) for query in queries]
                )
                repositories.append(group.repository)
            await group.stop()
            return waves, repositories

        waves, repositories = _run(scenario())
        for wave, repository in zip(waves, repositories):
            offline = _canonical(_offline(small_workload, queries, repository))
            for replica in range(2):
                served = _canonical([answers[replica] for answers in wave])
                assert served == offline

    def test_round_robin_spreads_requests(self, small_workload, queries):
        async def scenario():
            group = _group(small_workload)
            await group.start(small_workload.repository)
            answers = [await group.match(query) for query in queries * 2]
            await group.stop()
            return group, answers

        group, answers = _run(scenario())
        assert group.stats.served == len(queries) * 2
        assert _canonical(answers) == _canonical(
            _offline(small_workload, queries * 2, small_workload.repository)
        )


class TestDeliveryFaults:
    def test_duplicate_delivery_ignored(self, small_workload, queries):
        faults = DeltaLogFaults(duplicate={(1, 1)})

        async def scenario():
            group = _group(small_workload, delivery=faults)
            await group.start(small_workload.repository)
            await group.apply_delta(
                churn_delta(group.repository, churn=0.25, seed=0)
            )
            answers = [await group.match_all(query) for query in queries]
            repository = group.repository
            await group.stop()
            return group, answers, repository

        group, answers, repository = _run(scenario())
        assert group.stats.duplicates_ignored == 1
        assert group.current_replicas() == [0, 1]
        offline = _canonical(_offline(small_workload, queries, repository))
        for replica in range(2):
            assert _canonical([a[replica] for a in answers]) == offline

    def test_gap_refuses_service_until_caught_up(self, small_workload, queries):
        """Drop record 1 to replica 1: it buffers record 2 and refuses."""
        faults = DeltaLogFaults(drop={(1, 1)})

        async def scenario():
            group = _group(small_workload, delivery=faults)
            await group.start(small_workload.repository)
            await group.apply_delta(
                churn_delta(group.repository, churn=0.25, seed=0)
            )
            await group.apply_delta(
                churn_delta(group.repository, churn=0.25, seed=1)
            )
            assert group.current(0) and not group.current(1)
            # The stale replica refuses; the round-robin skips it.
            with pytest.raises(ReplicationError, match="behind the delta log"):
                await group.match_on(1, queries[0])
            routed = [await group.match(query) for query in queries]
            # Recovery: replay the missed records from the log.
            replayed = await group.catch_up(1)
            answers = [await group.match_all(query) for query in queries]
            repository = group.repository
            await group.stop()
            return group, routed, replayed, answers, repository

        group, routed, replayed, answers, repository = _run(scenario())
        assert group.stats.gaps_buffered == 1
        assert replayed == 2  # the dropped record 1 + buffered record 2
        assert group.stats.catch_ups == 1
        assert group.current_replicas() == [0, 1]
        offline = _canonical(_offline(small_workload, queries, repository))
        assert _canonical(routed) == offline  # served by replica 0 alone
        for replica in range(2):
            assert _canonical([a[replica] for a in answers]) == offline

    def test_reordered_delivery_drains_in_sequence(
        self, small_workload, queries
    ):
        """Hold record 1, deliver record 2 first, release: buffer drains."""
        faults = DeltaLogFaults(hold={(1, 1)})

        async def scenario():
            group = _group(small_workload, delivery=faults)
            await group.start(small_workload.repository)
            await group.apply_delta(
                churn_delta(group.repository, churn=0.25, seed=0)
            )
            await group.apply_delta(
                churn_delta(group.repository, churn=0.25, seed=1)
            )
            assert not group.current(1)  # record 2 buffered behind the hold
            released = await faults.release()
            assert group.current(1)  # record 1 applied, buffer drained
            answers = [await group.match_all(query) for query in queries]
            repository = group.repository
            await group.stop()
            return group, released, answers, repository

        group, released, answers, repository = _run(scenario())
        assert released == 1
        assert group.stats.gaps_buffered == 1
        assert group.applied(1) == 2
        offline = _canonical(_offline(small_workload, queries, repository))
        for replica in range(2):
            assert _canonical([a[replica] for a in answers]) == offline

    def test_every_replica_stale_refuses_loudly(self, small_workload, queries):
        faults = DeltaLogFaults(drop={(0, 1), (1, 1)})

        async def scenario():
            group = _group(small_workload, delivery=faults)
            await group.start(small_workload.repository)
            await group.apply_delta(
                churn_delta(group.repository, churn=0.25, seed=0)
            )
            with pytest.raises(ReplicationError, match="every replica"):
                await group.match(queries[0])
            await group.stop()

        _run(scenario())

    def test_divergent_replica_refused(self, small_workload):
        """A replica applying the *wrong* delta at a sequence is caught."""
        faults = DeltaLogFaults(drop={(1, 1)})

        async def scenario():
            group = _group(small_workload, delivery=faults)
            await group.start(small_workload.repository)
            await group.apply_delta(
                churn_delta(group.repository, churn=0.25, seed=0)
            )
            tampered = DeltaRecord(
                1, churn_delta(small_workload.repository, churn=0.25, seed=99)
            )
            with pytest.raises(ReplicationError, match="diverged"):
                await group.receive(1, tampered)
            await group.stop()

        _run(scenario())


class TestConstructionGuards:
    def test_config_mismatched_replicas_refused(self, small_workload):
        matchers = [
            make_matcher("beam", small_workload.objective, beam_width=4),
            make_matcher("beam", small_workload.objective, beam_width=8),
        ]
        with pytest.raises(ReplicationError, match="configured differently"):
            ReplicaGroup(matchers, 0.3)

    def test_shared_objective_refused(self, small_workload):
        matchers = [
            make_matcher("exhaustive", small_workload.objective)
            for _ in range(2)
        ]
        with pytest.raises(ReplicationError, match="share an objective"):
            ReplicaGroup(matchers, 0.3)

    def test_zero_replicas_refused(self, small_workload):
        with pytest.raises(MatchingError, match="replicas must be >= 1"):
            replica_group("exhaustive", small_workload.objective, 0, 0.3)

    def test_log_sequences_are_one_based(self, small_workload):
        with pytest.raises(ReplicationError, match="1-based"):
            DeltaRecord(0, churn_delta(small_workload.repository, 0.1, seed=0))


class TestMembership:
    """Runtime membership: join() via log replay, leave() without drain."""

    def test_join_catches_up_and_serves_identically(
        self, small_workload, queries
    ):
        """A replica joining after deltas ends byte-identical to founders."""

        async def scenario():
            group = _group(small_workload)
            await group.start(small_workload.repository)
            for seed in range(2):
                await group.apply_delta(
                    churn_delta(group.repository, churn=0.25, seed=seed)
                )
            joiner = make_matcher("exhaustive", small_workload.objective)
            index = await group.join(joiner)
            answers = [await group.match_all(query) for query in queries]
            repository = group.repository
            await group.stop()
            return group, index, answers, repository

        group, index, answers, repository = _run(scenario())
        assert index == 2
        assert group.stats.joins == 1
        assert group.applied(2) == 2  # the joiner replayed the whole log
        assert group.current_replicas() == [0, 1, 2]
        offline = _canonical(_offline(small_workload, queries, repository))
        for replica in range(3):
            assert _canonical([a[replica] for a in answers]) == offline

    def test_join_refuses_config_mismatch(self, small_workload):
        async def scenario():
            group = _group(small_workload)
            await group.start(small_workload.repository)
            try:
                with pytest.raises(
                    ReplicationError, match="configured differently"
                ):
                    await group.join(
                        make_matcher(
                            "beam", small_workload.objective, beam_width=4
                        )
                    )
            finally:
                await group.stop()

        _run(scenario())

    def test_join_refuses_shared_objective(self, small_workload):
        async def scenario():
            group = _group(small_workload)
            await group.start(small_workload.repository)
            try:
                shared = group.services[0].matcher.objective
                with pytest.raises(
                    ReplicationError, match="shares an objective"
                ):
                    await group.join(make_matcher("exhaustive", shared))
            finally:
                await group.stop()

        _run(scenario())

    def test_join_before_start_refused(self, small_workload):
        async def scenario():
            group = _group(small_workload)
            with pytest.raises(MatchingError, match="not started"):
                await group.join(
                    make_matcher("exhaustive", small_workload.objective)
                )

        _run(scenario())

    def test_leave_without_draining(self, small_workload, queries):
        """A replica leaves mid-life; the survivors keep serving."""

        async def scenario():
            group = _group(small_workload, replicas=3)
            await group.start(small_workload.repository)
            await group.apply_delta(
                churn_delta(group.repository, churn=0.25, seed=0)
            )
            gone = await group.leave(1)
            answers = [await group.match(query) for query in queries]
            repository = group.repository
            await group.stop()
            return group, gone, answers, repository

        group, gone, answers, repository = _run(scenario())
        assert group.stats.leaves == 1
        assert len(group.services) == 2
        assert not gone.started  # handed back stopped
        assert group.current_replicas() == [0, 1]
        offline = _canonical(_offline(small_workload, queries, repository))
        assert _canonical(answers) == offline

    def test_leave_last_replica_refused(self, small_workload):
        async def scenario():
            group = _group(small_workload, replicas=1)
            await group.start(small_workload.repository)
            try:
                with pytest.raises(
                    ReplicationError, match="cannot remove the last replica"
                ):
                    await group.leave(0)
            finally:
                await group.stop()

        _run(scenario())

    def test_leave_bounds_checked(self, small_workload):
        async def scenario():
            group = _group(small_workload)
            await group.start(small_workload.repository)
            try:
                with pytest.raises(ReplicationError, match="no replica at"):
                    await group.leave(5)
            finally:
                await group.stop()

        _run(scenario())

    def test_delivery_to_departed_replica_refused(self, small_workload):
        """A held delivery outliving a membership change is caught.

        Delivery hooks address replicas by index; after a leave() the
        index space shifts, so a record released against the old
        membership must refuse loudly rather than apply to whichever
        replica now wears that index — or run off the end of the group.
        """

        async def scenario():
            group = _group(small_workload)
            await group.start(small_workload.repository)
            record = DeltaRecord(
                1, churn_delta(group.repository, churn=0.25, seed=0)
            )
            try:
                with pytest.raises(
                    ReplicationError, match="membership change"
                ):
                    await group.receive(7, record)
            finally:
                await group.stop()

        _run(scenario())


class _FailingDelivery:
    """Raises on one scripted (replica, sequence); delivers the rest."""

    def __init__(self, replica: int, sequence: int):
        self.key = (replica, sequence)
        self.failures = 0

    async def __call__(self, group, index, record):
        if (index, record.sequence) == self.key:
            self.failures += 1
            raise RuntimeError("injected delivery failure")
        await group.receive(index, record)


class TestBackpressure:
    """Bounded delivery queues: a slow replica lags, the log never waits."""

    def test_param_validation(self, small_workload):
        with pytest.raises(ReplicationError, match="max_lag"):
            _group(small_workload, max_lag=0)
        with pytest.raises(ReplicationError, match="settle_timeout"):
            _group(small_workload, settle_timeout=0)

    def test_slow_replica_lags_instead_of_blocking(
        self, small_workload, queries
    ):
        """A delivery outliving settle_timeout: apply_delta moves on.

        The slow replica is marked lagging (front-end skips it, like
        stale), the fast replica keeps serving, and catch_up() replays
        the missed record and returns the laggard to serving —
        byte-identical to the offline path throughout.
        """
        faults = DeltaLogFaults(delay={(1, 1): 1.0})

        async def scenario():
            group = _group(
                small_workload, delivery=faults, settle_timeout=0.1
            )
            await group.start(small_workload.repository)
            loop = asyncio.get_running_loop()
            started = loop.time()
            await group.apply_delta(
                churn_delta(group.repository, churn=0.25, seed=0)
            )
            elapsed = loop.time() - started
            assert elapsed < 0.8, (
                f"apply_delta blocked {elapsed:.2f}s on a slow replica"
            )
            assert group.current(0) and group.lagging(1)
            assert group.current_replicas() == [0]
            with pytest.raises(
                ReplicationError, match="behind the delta log"
            ):
                await group.match_on(1, queries[0])
            routed = [await group.match(query) for query in queries]
            replayed = await group.catch_up(1)
            assert group.current_replicas() == [0, 1]
            answers = [await group.match_all(query) for query in queries]
            repository = group.repository
            await group.stop()
            return group, routed, replayed, answers, repository

        group, routed, replayed, answers, repository = _run(scenario())
        assert group.stats.settle_timeouts == 1
        assert group.stats.replicas_lagged >= 1
        assert replayed == 1
        offline = _canonical(_offline(small_workload, queries, repository))
        assert _canonical(routed) == offline  # replica 0 carried the load
        for replica in range(2):
            assert _canonical([a[replica] for a in answers]) == offline

    def test_queue_overflow_marks_lagging(self, small_workload, queries):
        """``max_lag`` is a hard bound on a replica's undelivered queue.

        catch_up() clears the lagging flag while the poisoned delivery
        is still in flight; the next apply_delta finds the queue at
        max_lag and backpressures the replica out again instead of
        growing the queue.
        """
        faults = DeltaLogFaults(delay={(1, 1): 5.0})

        async def scenario():
            group = _group(
                small_workload,
                delivery=faults,
                max_lag=1,
                settle_timeout=0.1,
            )
            await group.start(small_workload.repository)
            await group.apply_delta(
                churn_delta(group.repository, churn=0.25, seed=0)
            )
            assert group.lagging(1)
            await group.catch_up(1)  # recovered, delivery still in flight
            assert not group.lagging(1) and group.pending(1) == 1
            await group.apply_delta(
                churn_delta(group.repository, churn=0.25, seed=1)
            )
            assert group.lagging(1)  # overflowed max_lag, lagged again
            await group.catch_up(1)
            answers = [await group.match_all(query) for query in queries]
            repository = group.repository
            await group.stop()
            return group, answers, repository

        group, answers, repository = _run(scenario())
        assert group.stats.deliveries_skipped >= 1
        assert group.stats.replicas_lagged >= 2
        offline = _canonical(_offline(small_workload, queries, repository))
        for replica in range(2):
            assert _canonical([a[replica] for a in answers]) == offline

    def test_delivery_failure_lags_and_raises_once(
        self, small_workload, queries
    ):
        """A delivery that raises: loud once, lagging, recoverable."""
        faults = _FailingDelivery(replica=1, sequence=1)

        async def scenario():
            group = _group(
                small_workload, delivery=faults, settle_timeout=5.0
            )
            await group.start(small_workload.repository)
            with pytest.raises(RuntimeError, match="injected delivery"):
                await group.apply_delta(
                    churn_delta(group.repository, churn=0.25, seed=0)
                )
            assert group.lagging(1)
            # raised exactly once: the next append must not re-raise it
            await group.apply_delta(
                churn_delta(group.repository, churn=0.25, seed=1)
            )
            assert group.current(0) and not group.current(1)
            await group.catch_up(1)
            assert group.current_replicas() == [0, 1]
            answers = [await group.match_all(query) for query in queries]
            repository = group.repository
            await group.stop()
            return group, answers, repository

        group, answers, repository = _run(scenario())
        assert faults.failures == 1
        assert group.stats.delivery_failures == 1
        assert group.stats.deliveries_skipped >= 1  # skipped while lagging
        offline = _canonical(_offline(small_workload, queries, repository))
        for replica in range(2):
            assert _canonical([a[replica] for a in answers]) == offline

    def test_status_line_names_lagging_replicas(self, small_workload):
        faults = DeltaLogFaults(delay={(1, 1): 1.0})

        async def scenario():
            group = _group(
                small_workload, delivery=faults, settle_timeout=0.1
            )
            await group.start(small_workload.repository)
            await group.apply_delta(
                churn_delta(group.repository, churn=0.25, seed=0)
            )
            degraded = group.status()
            await group.catch_up(1)
            healed = group.status()
            await group.stop()
            return degraded, healed

        degraded, healed = _run(scenario())
        assert "2 replicas (1 serving)" in degraded
        assert "r1=lagging" in degraded
        assert "2 replicas (2 serving)" in healed
        assert "r1=current" in healed

    def test_group_stats_alias(self):
        from repro.matching import GroupStats, ReplicaGroupStats

        assert GroupStats is ReplicaGroupStats


class TestWarmStart:
    def test_group_warm_starts_from_checkpoint(
        self, small_workload, queries, tmp_path
    ):
        async def scenario():
            group = _group(small_workload, store=tmp_path / "snap")
            await group.start(small_workload.repository)
            baseline = [await group.match(query) for query in queries]
            await group.checkpoint()
            await group.stop()

            warm = _group(small_workload, store=tmp_path / "snap")
            await warm.start()
            assert all(s.stats.warm_start for s in warm.services)
            warmed = [await warm.match(query) for query in queries]
            await warm.stop()
            return baseline, warmed

        baseline, warmed = _run(scenario())
        assert _canonical(baseline) == _canonical(warmed)

"""Incremental re-matching over evolving repositories.

The headline property: after ANY delta, the incremental re-match is
**byte-identical** to a cold full re-match of the new repository — for
every matcher (pair-local ones reuse/skip/recompute, repository-global
ones fall back to a full recompute) and every delta kind (add, remove,
replace, mixed, no-op).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MatchingError
from repro.evaluation import (
    EvolutionConfig,
    build_evolution,
    build_workload,
    small_config,
)
from repro.matching import (
    EvolutionSession,
    ExhaustiveMatcher,
    MatchingPipeline,
    evolution_session,
    make_matcher,
    substrate_disabled,
)
from repro.schema import RepositoryDelta, churn_delta

_MATCHERS = [
    ("exhaustive", {}),
    ("beam", {"beam_width": 4}),
    ("clustering", {"clusters_per_element": 2}),
    ("topk", {"candidates_per_element": 3}),
    ("hybrid", {"clusters_per_element": 2, "beam_width": 4}),
]

_PAIR_LOCAL = {"exhaustive": True, "beam": True, "topk": True,
               "clustering": False, "hybrid": False}


@pytest.fixture(scope="module")
def workload():
    return build_workload(small_config())


@pytest.fixture(scope="module")
def queries(workload):
    return [scenario.query for scenario in workload.suite.scenarios]


def _canonical(answer_sets) -> bytes:
    return repr(
        [
            [(answer.item.key, answer.score) for answer in answers.answers()]
            for answers in answer_sets
        ]
    ).encode()


def _cold(matcher, queries, repository, delta_max):
    return MatchingPipeline(matcher, cache=False).run(
        queries, repository, delta_max
    )


class TestByteIdentity:
    @pytest.mark.parametrize("name,params", _MATCHERS)
    def test_identical_over_delta_stream(self, workload, queries, name, params):
        matcher = make_matcher(name, workload.objective, **params)
        session = EvolutionSession(matcher, queries, 0.3, cache=False)
        session.match(workload.repository)
        repository = workload.repository
        for step in range(3):
            delta = churn_delta(repository, churn=0.25, seed=step)
            result, report = session.apply(delta)
            repository = session.repository
            cold = _cold(matcher, queries, repository, 0.3)
            assert _canonical(result.answer_sets) == _canonical(
                cold.answer_sets
            ), (name, step)
            assert result.rematch is not None
            assert result.rematch.full_recompute is not _PAIR_LOCAL[name]

    @pytest.mark.parametrize(
        "delta_kind", ["add", "remove", "replace", "noop"]
    )
    def test_identical_per_delta_kind(self, workload, queries, delta_kind):
        matcher = ExhaustiveMatcher(workload.objective)
        session = EvolutionSession(matcher, queries, 0.3, cache=False)
        session.match(workload.repository)
        repository = workload.repository
        if delta_kind == "noop":
            delta = RepositoryDelta()
        else:
            weights = {
                "add": (0.0, 1.0, 0.0),
                "remove": (0.0, 0.0, 1.0),
                "replace": (1.0, 0.0, 0.0),
            }[delta_kind]
            delta = churn_delta(
                repository, churn=0.3, seed=5,
                replace_weight=weights[0],
                add_weight=weights[1],
                remove_weight=weights[2],
            )
        result, _report = session.apply(delta)
        cold = _cold(matcher, queries, session.repository, 0.3)
        assert _canonical(result.answer_sets) == _canonical(cold.answer_sets)

    def test_identical_without_substrate(self, workload, queries):
        with substrate_disabled():
            matcher = ExhaustiveMatcher(workload.objective)
            session = EvolutionSession(matcher, queries, 0.3, cache=False)
            session.match(workload.repository)
            delta = churn_delta(workload.repository, churn=0.3, seed=2)
            result, _ = session.apply(delta)
            cold = _cold(matcher, queries, session.repository, 0.3)
            assert _canonical(result.answer_sets) == _canonical(
                cold.answer_sets
            )

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=50),
        churn=st.sampled_from((0.1, 0.3, 0.6)),
        delta_max=st.sampled_from((0.1, 0.3)),
    )
    def test_identity_property(self, seed, churn, delta_max):
        workload = build_workload(small_config())
        queries = [scenario.query for scenario in workload.suite.scenarios]
        matcher = make_matcher("topk", workload.objective,
                               candidates_per_element=3)
        session = EvolutionSession(matcher, queries, delta_max, cache=False)
        session.match(workload.repository)
        delta = churn_delta(workload.repository, churn=churn, seed=seed)
        result, _ = session.apply(delta)
        cold = _cold(matcher, queries, session.repository, delta_max)
        assert _canonical(result.answer_sets) == _canonical(cold.answer_sets)


class TestRematchAccounting:
    def test_unchanged_schemas_are_reused(self, workload, queries):
        matcher = ExhaustiveMatcher(workload.objective)
        session = EvolutionSession(matcher, queries, 0.3, cache=False)
        session.match(workload.repository)
        delta = churn_delta(workload.repository, churn=0.2, seed=1)
        result, report = session.apply(delta)
        stats = result.rematch
        assert stats is not None and not stats.full_recompute
        assert stats.pairs_reused == len(queries) * len(report.unchanged)
        assert (
            stats.pairs_reused + stats.pairs_skipped + stats.pairs_recomputed
            == stats.pairs_total
            == len(queries) * len(session.repository)
        )
        assert stats.queries_touched <= len(queries)

    def test_noop_delta_recomputes_nothing(self, workload, queries):
        matcher = ExhaustiveMatcher(workload.objective)
        session = EvolutionSession(matcher, queries, 0.3, cache=False)
        session.match(workload.repository)
        result, report = session.apply(RepositoryDelta())
        assert report.is_noop
        assert result.rematch.pairs_recomputed == 0
        assert result.rematch.pairs_reused == result.rematch.pairs_total

    def test_full_recompute_flag_for_repository_global_matchers(
        self, workload, queries
    ):
        matcher = make_matcher(
            "clustering", workload.objective, clusters_per_element=2
        )
        assert not matcher.pair_local
        session = EvolutionSession(matcher, queries, 0.3, cache=False)
        session.match(workload.repository)
        result, _ = session.apply(churn_delta(workload.repository, 0.2, 1))
        assert result.rematch.full_recompute
        assert result.rematch.pairs_recomputed == result.rematch.pairs_total


class TestSessionApi:
    def test_accessors_require_match(self, workload, queries):
        session = EvolutionSession(
            ExhaustiveMatcher(workload.objective), queries, 0.3
        )
        with pytest.raises(MatchingError, match="call match"):
            _ = session.repository
        with pytest.raises(MatchingError, match="call match"):
            _ = session.answer_sets
        with pytest.raises(MatchingError, match="call match"):
            session.apply(RepositoryDelta())

    def test_empty_queries_rejected(self, workload):
        with pytest.raises(MatchingError, match="at least one query"):
            EvolutionSession(ExhaustiveMatcher(workload.objective), [], 0.3)

    def test_negative_threshold_rejected(self, workload, queries):
        with pytest.raises(MatchingError, match="delta_max"):
            EvolutionSession(
                ExhaustiveMatcher(workload.objective), queries, -0.1
            )

    def test_session_tracks_state(self, workload, queries):
        session = EvolutionSession(
            ExhaustiveMatcher(workload.objective), queries, 0.3, cache=False
        )
        session.match(workload.repository)
        assert session.repository is workload.repository
        assert session.last_report is None
        assert session.last_rematch is None
        delta = churn_delta(workload.repository, churn=0.2, seed=9)
        _, report = session.apply(delta)
        assert session.last_report is report
        assert session.last_rematch is not None
        assert session.repository.content_digest() == report.new_digest

    def test_registry_evolution_session(self, workload, queries):
        session = evolution_session(
            "beam", workload.objective, queries, 0.3,
            params={"beam_width": 4}, cache=False,
        )
        session.match(workload.repository)
        result, _ = session.apply(churn_delta(workload.repository, 0.2, 3))
        cold = _cold(session.matcher, queries, session.repository, 0.3)
        assert _canonical(result.answer_sets) == _canonical(cold.answer_sets)


class TestRematchValidation:
    def _previous(self, workload, queries, delta_max=0.3):
        matcher = ExhaustiveMatcher(workload.objective)
        pipeline = MatchingPipeline(matcher, cache=False)
        previous = pipeline.run(queries, workload.repository, delta_max)
        new_repo, report = workload.repository.apply(
            churn_delta(workload.repository, churn=0.2, seed=4)
        )
        return pipeline, previous, new_repo, report

    def test_threshold_mismatch_rejected(self, workload, queries):
        pipeline, previous, new_repo, report = self._previous(
            workload, queries
        )
        with pytest.raises(MatchingError, match="threshold"):
            pipeline.rematch(
                queries, new_repo, 0.2, previous=previous, report=report
            )

    def test_repository_mismatch_rejected(self, workload, queries):
        pipeline, previous, new_repo, report = self._previous(
            workload, queries
        )
        with pytest.raises(MatchingError, match="new content digest"):
            pipeline.rematch(
                queries, workload.repository, 0.3,
                previous=previous, report=report,
            )

    def test_query_mismatch_rejected(self, workload, queries):
        pipeline, previous, new_repo, report = self._previous(
            workload, queries
        )
        with pytest.raises(MatchingError, match="[Qq]uery set"):
            pipeline.rematch(
                queries[:-1], new_repo, 0.3, previous=previous, report=report
            )

    def test_matcher_mismatch_rejected(self, workload, queries):
        _pipeline, previous, new_repo, report = self._previous(
            workload, queries
        )
        other = MatchingPipeline(
            make_matcher("beam", workload.objective, beam_width=4),
            cache=False,
        )
        with pytest.raises(MatchingError, match="differently configured"):
            other.rematch(
                queries, new_repo, 0.3, previous=previous, report=report
            )

    def test_previous_without_pair_results_rejected(self, workload, queries):
        pipeline, previous, new_repo, report = self._previous(
            workload, queries
        )
        previous.pair_results = []
        with pytest.raises(MatchingError, match="pair_results"):
            pipeline.rematch(
                queries, new_repo, 0.3, previous=previous, report=report
            )

    def test_batch_rematch_wrapper(self, workload, queries):
        matcher = ExhaustiveMatcher(workload.objective)
        pipeline = MatchingPipeline(matcher, cache=False)
        previous = pipeline.run(queries, workload.repository, 0.3)
        new_repo, report = workload.repository.apply(
            churn_delta(workload.repository, churn=0.2, seed=4)
        )
        incremental = matcher.batch_rematch(
            queries, new_repo, 0.3,
            previous=previous, report=report, cache=False,
        )
        cold = matcher.batch_match(queries, new_repo, 0.3, cache=False)
        assert _canonical(incremental) == _canonical(cold)


class TestEvolutionWorkloads:
    def test_build_evolution_grid(self, workload):
        config = EvolutionConfig(
            churn_rates=(0.1, 0.3), steps_per_rate=2, seed=5
        )
        steps = build_evolution(workload, config)
        assert len(steps) == config.num_steps == 4
        assert [step.churn for step in steps] == [0.1, 0.1, 0.3, 0.3]
        # each step applies cleanly onto the previous repository
        repository = workload.repository
        for step in steps:
            repository, report = repository.apply(step.delta)
            assert repository.content_digest() == step.repository.content_digest()
            assert report.new_digest == step.report.new_digest
            assert step.suite.repository is step.repository

    def test_build_evolution_rebases_ground_truth(self, workload):
        steps = build_evolution(
            workload,
            EvolutionConfig(churn_rates=(0.5,), steps_per_rate=1, seed=3),
        )
        step = steps[0]
        assert len(step.suite) == len(workload.suite)
        # ground truth points only at schemas of the evolved repository
        for scenario in step.suite:
            for mapping in scenario.ground_truth:
                for handle in mapping.targets:
                    assert handle.schema.schema_id in step.repository

    def test_build_evolution_deterministic(self, workload):
        config = EvolutionConfig(churn_rates=(0.2,), steps_per_rate=2, seed=8)
        first = build_evolution(workload, config)
        second = build_evolution(workload, config)
        assert [s.repository.content_digest() for s in first] == [
            s.repository.content_digest() for s in second
        ]

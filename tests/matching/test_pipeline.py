"""Tests of the sharded matching pipeline.

The decisive invariants: sharded/parallel output is identical to serial
``Matcher.match`` output for every matcher, the candidate cache turns
repeated workloads into pure lookups without changing results, and
sharding partitions the repository exactly.
"""

import pytest

from repro.errors import MatchingError
from repro.matching import (
    BeamMatcher,
    CandidateCache,
    ClusteringMatcher,
    ExhaustiveMatcher,
    MatchingPipeline,
    TopKCandidateMatcher,
    shard_repository,
)
from repro.matching import batch_match as registry_batch_match
from repro.matching.objective import ObjectiveFunction
from repro.matching.pipeline import matcher_fingerprint, schema_digest
from repro.matching.similarity.name import NameSimilarity, Thesaurus
from repro.schema.generator import GeneratorConfig, generate_repository
from repro.schema.model import Datatype, Schema, SchemaElement
from repro.schema.mutations import extract_personal_schema
from repro.schema.vocabulary import builtin_domains
from repro.util import rng

DELTA = 0.3


@pytest.fixture(scope="module")
def setup():
    repo = generate_repository(
        GeneratorConfig(num_schemas=6, min_size=6, max_size=12, seed=11)
    )
    thesaurus = Thesaurus.from_vocabularies(
        builtin_domains().values(), coverage=0.7, seed=5
    )
    objective = ObjectiveFunction(NameSimilarity(thesaurus))
    queries = [
        extract_personal_schema(
            rng.make_tagged(40 + i),
            repo.schemas()[i],
            None,
            target_size=3,
            schema_id=f"pq-{i}",
        )
        for i in range(3)
    ]
    return repo, objective, queries


def flatten(answer_set):
    return [(a.item, a.score) for a in answer_set.answers()]


class _ExplodingMatcher(ExhaustiveMatcher):
    """Raises on every pair search; module-level so workers can unpickle it."""

    def match_pair(self, query, schema, delta_max):
        raise ValueError("injected worker failure")


MATCHERS = [
    ("exhaustive", lambda obj: ExhaustiveMatcher(obj)),
    ("beam", lambda obj: BeamMatcher(obj, beam_width=5)),
    ("clustering", lambda obj: ClusteringMatcher(obj, clusters_per_element=2)),
    ("topk", lambda obj: TopKCandidateMatcher(obj, candidates_per_element=4)),
]


class TestShardRepository:
    def test_exact_partition(self, setup):
        repo, _, _ = setup
        for num_shards in (1, 2, 3, len(repo), len(repo) + 5):
            shards = shard_repository(repo, num_shards)
            ids = [s.schema_id for shard in shards for s in shard]
            assert sorted(ids) == sorted(s.schema_id for s in repo)
            assert len(ids) == len(set(ids))
            assert len(shards) == min(num_shards, len(repo))

    def test_round_robin_is_deterministic(self, setup):
        repo, _, _ = setup
        first = shard_repository(repo, 3)
        second = shard_repository(repo, 3)
        assert [s.schema_id for shard in first for s in shard] == [
            s.schema_id for shard in second for s in shard
        ]

    def test_balanced_sizes(self, setup):
        repo, _, _ = setup
        sizes = [len(shard) for shard in shard_repository(repo, 4)]
        assert max(sizes) - min(sizes) <= 1

    def test_invalid_shard_count(self, setup):
        repo, _, _ = setup
        with pytest.raises(MatchingError):
            shard_repository(repo, 0)


class TestCandidateCache:
    def test_roundtrip_and_stats(self):
        cache = CandidateCache(maxsize=4)
        assert cache.get("k") is None
        cache.put("k", [((0, 1), 0.1)])
        assert cache.get("k") == [((0, 1), 0.1)]
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_lru_eviction(self):
        cache = CandidateCache(maxsize=2)
        cache.put("a", [])
        cache.put("b", [])
        assert cache.get("a") == []  # refresh "a"; "b" is now LRU
        cache.put("c", [])
        assert cache.get("b") is None
        assert cache.get("a") == []
        assert cache.stats.evictions == 1

    def test_zero_size_disables_storage(self):
        cache = CandidateCache(maxsize=0)
        cache.put("a", [])
        assert len(cache) == 0
        assert cache.get("a") is None

    def test_negative_size_rejected(self):
        with pytest.raises(MatchingError):
            CandidateCache(maxsize=-1)


class TestSerialPipeline:
    @pytest.mark.parametrize("name,factory", MATCHERS)
    def test_identical_to_per_query_match(self, setup, name, factory):
        repo, objective, queries = setup
        serial = [
            factory(objective).match(query, repo, DELTA) for query in queries
        ]
        batched = factory(objective).batch_match(
            queries, repo, DELTA, workers=1, shards=3, cache=False
        )
        assert [flatten(a) for a in serial] == [flatten(a) for a in batched]

    def test_stream_covers_every_unit(self, setup):
        repo, objective, queries = setup
        pipeline = MatchingPipeline(
            ExhaustiveMatcher(objective), workers=1, shards=2, cache=False
        )
        increments = list(pipeline.stream(queries, repo, DELTA))
        units = {(i.query_index, i.shard_index) for i in increments}
        assert units == {(q, s) for q in range(len(queries)) for s in range(2)}
        schemas_seen = {
            schema_id
            for increment in increments
            if increment.query_index == 0
            for schema_id, _ in increment.pair_results
        }
        assert schemas_seen == {s.schema_id for s in repo}
        assert pipeline.last_stats.pairs_total == len(queries) * len(repo)

    def test_cache_turns_second_run_into_lookups(self, setup):
        repo, objective, queries = setup
        cache = CandidateCache()
        matcher = ExhaustiveMatcher(objective)
        first = matcher.batch_match(queries, repo, DELTA, workers=1, cache=cache)
        hits_before = cache.stats.hits
        pipeline = MatchingPipeline(matcher, workers=1, cache=cache)
        result = pipeline.run(queries, repo, DELTA)
        assert [flatten(a) for a in first] == [
            flatten(a) for a in result.answer_sets
        ]
        assert result.stats.pairs_from_cache == result.stats.pairs_total
        assert cache.stats.hits == hits_before + result.stats.pairs_total
        streamed = list(pipeline.stream(queries, repo, DELTA))
        assert all(increment.from_cache for increment in streamed)

    def test_cache_distinguishes_matcher_parameters(self, setup):
        repo, objective, queries = setup
        cache = CandidateCache()
        narrow = BeamMatcher(objective, beam_width=2).batch_match(
            queries, repo, DELTA, workers=1, cache=cache
        )
        wide = BeamMatcher(objective, beam_width=12).batch_match(
            queries, repo, DELTA, workers=1, cache=cache
        )
        # a narrower beam keeps fewer answers; a shared cache entry would
        # make the two systems agree
        assert sum(len(a) for a in narrow) < sum(len(a) for a in wide)

    def test_cache_distinguishes_thresholds(self, setup):
        repo, objective, queries = setup
        cache = CandidateCache()
        matcher = ExhaustiveMatcher(objective)
        low = matcher.batch_match(queries, repo, 0.15, workers=1, cache=cache)
        high = matcher.batch_match(queries, repo, DELTA, workers=1, cache=cache)
        assert sum(len(a) for a in low) < sum(len(a) for a in high)

    def test_empty_queries(self, setup):
        repo, objective, _ = setup
        assert (
            ExhaustiveMatcher(objective).batch_match([], repo, DELTA, workers=1)
            == []
        )

    def test_negative_delta_rejected(self, setup):
        repo, objective, queries = setup
        with pytest.raises(MatchingError):
            ExhaustiveMatcher(objective).batch_match(
                queries, repo, -0.1, workers=1
            )

    def test_registry_batch_match(self, setup):
        repo, objective, queries = setup
        by_name = registry_batch_match(
            "beam",
            objective,
            queries,
            repo,
            DELTA,
            params={"beam_width": 5},
            workers=1,
            cache=False,
        )
        direct = BeamMatcher(objective, beam_width=5).batch_match(
            queries, repo, DELTA, workers=1, cache=False
        )
        assert [flatten(a) for a in by_name] == [flatten(a) for a in direct]


class TestShardedPipeline:
    @pytest.mark.parametrize(
        "name,factory",
        [MATCHERS[0], MATCHERS[2]],  # exhaustive + the repo-global clustering
    )
    def test_workers_identical_to_serial(self, setup, name, factory):
        repo, objective, queries = setup
        serial = factory(objective).batch_match(
            queries, repo, DELTA, workers=1, shards=1, cache=False
        )
        sharded = factory(objective).batch_match(
            queries, repo, DELTA, workers=2, shards=3, cache=False
        )
        assert [flatten(a) for a in serial] == [flatten(a) for a in sharded]

    def test_workers_fill_the_cache(self, setup):
        repo, objective, queries = setup
        cache = CandidateCache()
        matcher = ExhaustiveMatcher(objective)
        matcher.batch_match(queries, repo, DELTA, workers=2, cache=cache)
        pipeline = MatchingPipeline(matcher, workers=2, cache=cache)
        streamed = list(pipeline.stream(queries, repo, DELTA))
        assert all(increment.from_cache for increment in streamed)


class TestRepositoryContentChanges:
    def test_stale_clustering_state_cannot_poison_shared_cache(self, setup):
        """Same repository_id, different content: prepare must re-run.

        The synthetic generator reuses one repository_id across seeds; a
        matcher prepared on one seed's content and reused on another
        must recluster, or it would both return wrong answers and write
        them into the shared candidate cache under the new content's
        keys.
        """
        _, objective, _ = setup
        repo_a = generate_repository(
            GeneratorConfig(num_schemas=4, min_size=6, max_size=10, seed=1)
        )
        repo_b = generate_repository(
            GeneratorConfig(num_schemas=4, min_size=6, max_size=10, seed=2)
        )
        assert repo_a.repository_id == repo_b.repository_id
        assert repo_a.content_digest() != repo_b.content_digest()
        query = extract_personal_schema(
            rng.make_tagged(7),
            repo_b.schemas()[0],
            None,
            target_size=3,
            schema_id="poison-query",
        )
        expected = ClusteringMatcher(objective, clusters_per_element=2).match(
            query, repo_b, DELTA
        )

        cache = CandidateCache()
        stale = ClusteringMatcher(objective, clusters_per_element=2)
        stale.prepare(repo_a)  # now holds repo_a's clusters
        via_stale = stale.batch_match(
            [query], repo_b, DELTA, workers=1, cache=cache
        )[0]
        assert flatten(via_stale) == flatten(expected)

        fresh = ClusteringMatcher(objective, clusters_per_element=2)
        via_cache = fresh.batch_match(
            [query], repo_b, DELTA, workers=1, cache=cache
        )[0]
        assert flatten(via_cache) == flatten(expected)


def _tiny_schema(child_name: str = "author", concept: str | None = None):
    root = SchemaElement("book", Datatype.COMPLEX)
    root.add_child(SchemaElement(child_name, Datatype.STRING, concept=concept))
    return Schema("tiny", root)


class TestFingerprints:
    def test_schema_digest_ignores_concepts(self):
        assert schema_digest(_tiny_schema(concept=None)) == schema_digest(
            _tiny_schema(concept="bib:author")
        )

    def test_schema_digest_sees_names(self):
        assert schema_digest(_tiny_schema("author")) != schema_digest(
            _tiny_schema("title")
        )

    def test_matcher_fingerprint_separates_configurations(self, setup):
        _, objective, _ = setup
        assert matcher_fingerprint(
            BeamMatcher(objective, beam_width=2)
        ) != matcher_fingerprint(BeamMatcher(objective, beam_width=3))
        assert matcher_fingerprint(
            ExhaustiveMatcher(objective)
        ) != matcher_fingerprint(BeamMatcher(objective, beam_width=2))


class TestWorkerPoolReuse:
    """Worker state is installed one-shot per process and reused.

    Successive parallel runs with the same matcher/repository/query
    identity must keep the same live pool (nothing re-pickled, no
    process respawn); changing the repository must rotate it.
    """

    @pytest.fixture(autouse=True)
    def _clean_pool(self):
        from repro.matching.pipeline import shutdown_workers

        shutdown_workers()
        yield
        shutdown_workers()

    def test_pool_survives_repeated_runs(self, setup):
        from repro.matching import executor as executor_module

        repo, objective, queries = setup
        matcher = ExhaustiveMatcher(objective)
        runner = MatchingPipeline(matcher, workers=2, cache=False)
        first = runner.run(queries, repo, DELTA)
        pool = executor_module._POOL
        assert pool is not None
        second = runner.run(queries, repo, DELTA)
        assert executor_module._POOL is pool  # same executor, no respawn
        assert [flatten(a) for a in first.answer_sets] == [
            flatten(a) for a in second.answer_sets
        ]

    def test_pool_survives_threshold_sweep(self, setup):
        from repro.matching import executor as executor_module

        repo, objective, queries = setup
        matcher = ExhaustiveMatcher(objective)
        runner = MatchingPipeline(matcher, workers=2, cache=False)
        runner.run(queries, repo, 0.15)
        pool = executor_module._POOL
        runner.run(queries, repo, DELTA)  # only the threshold changed
        assert executor_module._POOL is pool

    def test_pool_rotates_when_repository_changes(self, setup):
        from repro.matching import executor as executor_module

        repo, objective, queries = setup
        other = generate_repository(
            GeneratorConfig(num_schemas=4, min_size=6, max_size=10, seed=99)
        )
        matcher = ExhaustiveMatcher(objective)
        runner = MatchingPipeline(matcher, workers=2, cache=False)
        runner.run(queries, repo, DELTA)
        pool = executor_module._POOL
        runner.run(queries, other, DELTA)
        assert executor_module._POOL is not pool

    def test_parallel_output_identical_across_pool_reuse(self, setup):
        repo, objective, queries = setup
        matcher = BeamMatcher(objective, beam_width=4)
        serial = matcher.batch_match(
            queries, repo, DELTA, workers=1, cache=False
        )
        parallel_first = matcher.batch_match(
            queries, repo, DELTA, workers=2, cache=False
        )
        parallel_again = matcher.batch_match(
            queries, repo, DELTA, workers=2, cache=False
        )
        for a, b, c in zip(serial, parallel_first, parallel_again):
            assert flatten(a) == flatten(b) == flatten(c)

    def test_shutdown_workers_is_idempotent(self):
        from repro.matching.pipeline import shutdown_workers

        shutdown_workers()
        shutdown_workers()

    def test_worker_exception_mid_sweep_retires_pool(self, setup):
        # A unit raising inside a worker must not leave the shared pool
        # alive with orphaned busy processes (leaks across tests as CI
        # slowdown): the executor cancels outstanding futures and shuts
        # the pool down before re-raising.
        from repro.matching import executor as executor_module

        repo, objective, queries = setup
        runner = MatchingPipeline(
            _ExplodingMatcher(objective), workers=2, cache=False
        )
        with pytest.raises(ValueError, match="injected worker failure"):
            runner.run(queries, repo, DELTA)
        assert executor_module._POOL is None

    def test_abandoned_stream_keeps_pool_warm(self, setup):
        # Abandoning the increment stream (GeneratorExit) is not a
        # failure: pending units are cancelled but the warm pool stays
        # for the next run.
        from repro.matching import executor as executor_module

        repo, objective, queries = setup
        runner = MatchingPipeline(
            ExhaustiveMatcher(objective), workers=2, cache=False
        )
        stream = runner.stream(queries, repo, DELTA)
        next(stream)
        stream.close()
        assert executor_module._POOL is not None

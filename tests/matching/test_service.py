"""The async matching service: scheduling on top, byte-identity throughout.

The acceptance property: for **all five matchers**, every answer the
service returns — micro-batched, coalesced, served from retained state,
before and after live repository deltas, warm-started from a snapshot —
is byte-identical to the offline ``batch_match``/``batch_rematch``
path.  Plus the lifecycle contract: a present-but-bad snapshot fails
loudly at ``start()``; the service never silently cold-starts over
wrong state.
"""

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MatchingError, SnapshotError
from repro.evaluation import build_workload, small_config
from repro.matching import (
    EvolutionSession,
    ExhaustiveMatcher,
    MatchingService,
    make_matcher,
    matching_service,
)
from repro.schema import churn_delta

_MATCHERS = [
    ("exhaustive", {}),
    ("beam", {"beam_width": 4}),
    ("clustering", {"clusters_per_element": 2}),
    ("topk", {"candidates_per_element": 3}),
    ("hybrid", {"clusters_per_element": 2, "beam_width": 4}),
]


@pytest.fixture(scope="module")
def workload():
    return build_workload(small_config())


@pytest.fixture(scope="module")
def queries(workload):
    return [scenario.query for scenario in workload.suite.scenarios]


def _canonical(answer_sets) -> bytes:
    return repr(
        [
            [(answer.item.key, answer.score) for answer in answers.answers()]
            for answers in answer_sets
        ]
    ).encode()


def _run(coroutine):
    return asyncio.run(coroutine)


async def _serve_all(service, queries):
    return list(await asyncio.gather(*[service.match(q) for q in queries]))


class TestByteIdentityProperty:
    @pytest.mark.parametrize("name,params", _MATCHERS)
    def test_service_equals_offline_with_live_deltas(
        self, workload, queries, name, params
    ):
        """The acceptance property, per matcher: serve, evolve, serve."""
        matcher = make_matcher(name, workload.objective, **params)

        async def scenario():
            service = MatchingService(matcher, 0.3, cache=False)
            await service.start(workload.repository)
            waves = [await _serve_all(service, queries)]
            repositories = [service.repository]
            for step in range(2):
                delta = churn_delta(service.repository, churn=0.25, seed=step)
                await service.apply_delta(delta)
                waves.append(await _serve_all(service, queries))
                repositories.append(service.repository)
            await service.stop()
            return waves, repositories

        waves, repositories = _run(scenario())
        for wave, repository in zip(waves, repositories):
            offline = matcher.batch_match(queries, repository, 0.3, cache=False)
            assert _canonical(wave) == _canonical(offline), name

    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=40),
        churn=st.sampled_from((0.1, 0.3, 0.6)),
        delta_max=st.sampled_from((0.1, 0.3)),
    )
    def test_identity_property(self, seed, churn, delta_max):
        workload = build_workload(small_config())
        queries = [s.query for s in workload.suite.scenarios]
        matcher = make_matcher(
            "topk", workload.objective, candidates_per_element=3
        )

        async def scenario():
            service = MatchingService(matcher, delta_max, cache=False)
            await service.start(workload.repository)
            await _serve_all(service, queries)  # retain the baseline
            await service.apply_delta(
                churn_delta(workload.repository, churn=churn, seed=seed)
            )
            answers = await _serve_all(service, queries)
            repository = service.repository
            await service.stop()
            return answers, repository

        answers, repository = _run(scenario())
        offline = matcher.batch_match(
            queries, repository, delta_max, cache=False
        )
        assert _canonical(answers) == _canonical(offline)


class TestMicroBatching:
    def test_concurrent_requests_coalesce(self, workload, queries):
        matcher = ExhaustiveMatcher(workload.objective)

        async def scenario():
            service = MatchingService(
                matcher, 0.3, cache=False, max_batch=2
            )
            await service.start(workload.repository)
            # every query requested twice, concurrently
            answers = await asyncio.gather(
                *[service.match(q) for q in queries for _ in range(2)]
            )
            stats = service.stats
            await service.stop()
            return list(answers), stats

        answers, stats = _run(scenario())
        offline = matcher.batch_match(queries, workload.repository, 0.3,
                                      cache=False)
        expected = [answers_ for answers_ in offline for _ in range(2)]
        assert _canonical(answers) == _canonical(expected)
        assert stats.requests == 2 * len(queries)
        # duplicates never matched twice: coalesced into the in-flight
        # computation or served from retained state
        assert stats.batched_queries == len(queries)
        assert stats.coalesced + stats.served_from_state == len(queries)
        # max_batch=2 forces multiple micro-batches
        assert stats.batches >= 2
        assert stats.max_batched <= 2

    def test_repeats_are_served_from_state(self, workload, queries):
        matcher = ExhaustiveMatcher(workload.objective)

        async def scenario():
            service = MatchingService(matcher, 0.3, cache=False)
            await service.start(workload.repository)
            first = await _serve_all(service, queries)
            second = await _serve_all(service, queries)
            stats = service.stats
            retained = service.retained_queries
            await service.stop()
            return first, second, stats, retained

        first, second, stats, retained = _run(scenario())
        assert _canonical(first) == _canonical(second)
        assert stats.served_from_state == len(queries)
        assert stats.batched_queries == len(queries)
        assert [q.content_digest() for q in retained] == [
            q.content_digest() for q in queries
        ]

    def test_coalescing_window(self, workload, queries):
        """A non-zero max_delay still answers correctly (and batches)."""
        matcher = ExhaustiveMatcher(workload.objective)

        async def scenario():
            service = MatchingService(
                matcher, 0.3, cache=False, max_delay=0.005, max_batch=64
            )
            await service.start(workload.repository)
            answers = await _serve_all(service, queries)
            stats = service.stats
            await service.stop()
            return answers, stats

        answers, stats = _run(scenario())
        offline = matcher.batch_match(queries, workload.repository, 0.3,
                                      cache=False)
        assert _canonical(answers) == _canonical(offline)
        assert stats.batches == 1  # the window gathered them all


class TestSnapshotLifecycle:
    def _snapshot(self, tmp_path, workload, queries):
        matcher = ExhaustiveMatcher(workload.objective)

        async def scenario():
            service = MatchingService(
                matcher, 0.3, cache=False, store=tmp_path / "snap"
            )
            await service.start(workload.repository)
            answers = await _serve_all(service, queries)
            await service.checkpoint()
            await service.stop()
            return answers

        return _run(scenario())

    def test_warm_start_serves_identically_without_matching(
        self, tmp_path, workload, queries
    ):
        baseline = self._snapshot(tmp_path, workload, queries)
        fresh = build_workload(small_config())  # the "restarted process"
        matcher = ExhaustiveMatcher(fresh.objective)
        fresh_queries = [s.query for s in fresh.suite.scenarios]

        async def scenario():
            service = MatchingService(
                matcher, 0.3, cache=False, store=tmp_path / "snap"
            )
            await service.start()  # no repository: from snapshot alone
            answers = await _serve_all(service, fresh_queries)
            stats = service.stats
            substrate_stats = fresh.objective.substrate().stats
            await service.stop()
            return answers, stats, substrate_stats

        answers, stats, substrate_stats = _run(scenario())
        assert stats.warm_start
        assert stats.matrices_restored > 0
        assert stats.served_from_state == len(queries)  # zero searches ran
        assert stats.batched_queries == 0
        assert substrate_stats.matrices_built == 0
        assert _canonical(answers) == _canonical(baseline)

    def test_checkpoint_every_writes_snapshots(
        self, tmp_path, workload, queries
    ):
        matcher = ExhaustiveMatcher(workload.objective)

        async def scenario():
            service = MatchingService(
                matcher, 0.3, cache=False,
                store=tmp_path / "auto", checkpoint_every=2,
            )
            await service.start(workload.repository)
            await _serve_all(service, queries)
            for step in range(4):
                await service.apply_delta(
                    churn_delta(service.repository, churn=0.2, seed=step)
                )
            stats = service.stats
            await service.stop()
            return stats

        stats = _run(scenario())
        assert stats.deltas_applied == 4
        assert stats.checkpoints_written == 2  # after deltas 2 and 4
        assert (tmp_path / "auto" / "manifest.json").is_file()

    def test_corrupt_snapshot_fails_start_loudly(
        self, tmp_path, workload, queries
    ):
        self._snapshot(tmp_path, workload, queries)
        results = next((tmp_path / "snap").glob("results-*.json"))
        results.write_bytes(results.read_bytes()[:-25])  # truncate

        async def scenario():
            service = MatchingService(
                ExhaustiveMatcher(workload.objective), 0.3,
                store=tmp_path / "snap",
            )
            await service.start(workload.repository)  # repo offered, but...

        with pytest.raises(SnapshotError, match="corrupt"):
            _run(scenario())  # ...a bad snapshot must never cold-start

    def test_mismatched_matcher_fails_start_loudly(
        self, tmp_path, workload, queries
    ):
        self._snapshot(tmp_path, workload, queries)

        async def scenario():
            service = MatchingService(
                make_matcher("beam", workload.objective, beam_width=4),
                0.3, store=tmp_path / "snap",
            )
            await service.start()

        with pytest.raises(SnapshotError, match="differently configured"):
            _run(scenario())

    def test_mismatched_threshold_fails_start_loudly(
        self, tmp_path, workload, queries
    ):
        self._snapshot(tmp_path, workload, queries)

        async def scenario():
            service = MatchingService(
                ExhaustiveMatcher(workload.objective), 0.2,
                store=tmp_path / "snap",
            )
            await service.start()

        with pytest.raises(SnapshotError, match="δmax"):
            _run(scenario())

    def test_mismatched_repository_fails_start_loudly(
        self, tmp_path, workload, queries
    ):
        self._snapshot(tmp_path, workload, queries)
        evolved, _ = workload.repository.apply(
            churn_delta(workload.repository, churn=0.3, seed=4)
        )

        async def scenario():
            service = MatchingService(
                ExhaustiveMatcher(workload.objective), 0.3,
                store=tmp_path / "snap",
            )
            await service.start(evolved)

        with pytest.raises(SnapshotError, match="differs from the snapshot"):
            _run(scenario())


class TestServiceApi:
    def test_constructor_validation(self, workload):
        matcher = ExhaustiveMatcher(workload.objective)
        with pytest.raises(MatchingError, match="delta_max"):
            MatchingService(matcher, -0.1)
        with pytest.raises(MatchingError, match="max_batch"):
            MatchingService(matcher, 0.3, max_batch=0)
        with pytest.raises(MatchingError, match="max_delay"):
            MatchingService(matcher, 0.3, max_delay=-1)
        with pytest.raises(MatchingError, match="checkpoint_every"):
            MatchingService(matcher, 0.3, checkpoint_every=0)

    def test_lifecycle_guards(self, workload, queries):
        matcher = ExhaustiveMatcher(workload.objective)

        async def scenario():
            service = MatchingService(matcher, 0.3, cache=False)
            with pytest.raises(MatchingError, match="no repository"):
                _ = service.repository
            with pytest.raises(MatchingError, match="not accepting"):
                await service.match(queries[0])
            with pytest.raises(MatchingError, match="cold start needs"):
                await service.start()
            await service.start(workload.repository)
            with pytest.raises(MatchingError, match="already started"):
                await service.start(workload.repository)
            with pytest.raises(MatchingError, match="without a snapshot store"):
                await service.checkpoint()
            await service.stop()
            await service.stop()  # idempotent

        _run(scenario())

    def test_bad_request_fails_alone_not_the_dispatcher(
        self, workload, queries
    ):
        """One malformed request must fail its own future; every other
        request — concurrent and subsequent — keeps being served."""
        matcher = ExhaustiveMatcher(workload.objective)

        async def scenario():
            service = MatchingService(matcher, 0.3, cache=False)
            await service.start(workload.repository)
            bad = asyncio.ensure_future(service.match(object()))  # no digest
            good = asyncio.ensure_future(service.match(queries[0]))
            with pytest.raises(AttributeError):
                await bad
            first = await good
            later = await service.match(queries[1])  # dispatcher survived
            await service.stop()
            return first, later

        first, later = _run(scenario())
        offline = matcher.batch_match(
            queries[:2], workload.repository, 0.3, cache=False
        )
        assert _canonical([first, later]) == _canonical(offline)

    def test_stop_drains_pending_requests(self, workload, queries):
        matcher = ExhaustiveMatcher(workload.objective)

        async def scenario():
            service = MatchingService(matcher, 0.3, cache=False)
            await service.start(workload.repository)
            futures = [
                asyncio.ensure_future(service.match(q)) for q in queries
            ]
            await service.stop()  # must resolve, not orphan, the futures
            return await asyncio.gather(*futures)

        answers = _run(scenario())
        offline = ExhaustiveMatcher(workload.objective).batch_match(
            queries, workload.repository, 0.3, cache=False
        )
        assert _canonical(answers) == _canonical(offline)

    def test_stop_without_draining_fails_pending_loudly(
        self, workload, queries
    ):
        """stop(drain=False): queued requests refuse, none are answered.

        The replica-leave path — a service going away mid-request must
        fail its queue loudly (every future resolves with
        ``MatchingError``) rather than serve on the way out or leave a
        caller hanging; later requests are refused the same way.
        """
        matcher = ExhaustiveMatcher(workload.objective)

        async def scenario():
            # a wide coalescing window parks the requests in the pending
            # queue: they are enqueued but unserved when stop() lands
            service = MatchingService(
                matcher, 0.3, cache=False, max_delay=5.0
            )
            await service.start(workload.repository)
            futures = [
                asyncio.ensure_future(service.match(q)) for q in queries
            ]
            await asyncio.sleep(0)  # let the requests reach the queue
            await service.stop(drain=False)
            outcomes = await asyncio.gather(*futures, return_exceptions=True)
            with pytest.raises(MatchingError, match="not accepting"):
                await service.match(queries[0])
            return outcomes

        outcomes = _run(scenario())
        assert len(outcomes) == len(queries)
        for outcome in outcomes:
            assert isinstance(outcome, MatchingError)
            assert "without draining" in str(outcome)

    def test_restart_on_new_repository_serves_fresh_state(
        self, workload, queries
    ):
        """start() after stop() is a fresh run: nothing retained for the
        old repository may leak into answers for the new one."""
        matcher = ExhaustiveMatcher(workload.objective)
        evolved, _ = workload.repository.apply(
            churn_delta(workload.repository, churn=0.5, seed=21)
        )

        async def scenario():
            service = MatchingService(matcher, 0.3, cache=False)
            await service.start(workload.repository)
            await _serve_all(service, queries)
            await service.stop()
            await service.start(evolved)  # no store: must reset, not reuse
            answers = await _serve_all(service, queries)
            stats = service.stats
            await service.stop()
            return answers, stats

        answers, stats = _run(scenario())
        offline = matcher.batch_match(queries, evolved, 0.3, cache=False)
        assert _canonical(answers) == _canonical(offline)
        assert stats.served_from_state == 0  # per-run counters, fresh state
        assert stats.batched_queries == len(queries)

    def test_registry_factory(self, workload, queries):
        async def scenario():
            service = matching_service(
                "beam", workload.objective, 0.3,
                params={"beam_width": 4}, cache=False,
            )
            await service.start(workload.repository)
            answers = await _serve_all(service, queries)
            matcher = service.matcher
            repository = service.repository
            await service.stop()
            return answers, matcher, repository

        answers, matcher, repository = _run(scenario())
        offline = matcher.batch_match(queries, repository, 0.3, cache=False)
        assert _canonical(answers) == _canonical(offline)


class TestSessionExtend:
    def test_extend_matches_then_evolves_together(self, workload, queries):
        matcher = ExhaustiveMatcher(workload.objective)
        session = EvolutionSession(matcher, queries[:2], 0.3, cache=False)
        session.match(workload.repository)
        added = session.extend(queries[2:])
        offline = matcher.batch_match(
            queries, workload.repository, 0.3, cache=False
        )
        assert _canonical(session.answer_sets) == _canonical(offline)
        assert _canonical(added) == _canonical(offline[2:])
        # extended queries ride later deltas incrementally
        result, _ = session.apply(
            churn_delta(workload.repository, churn=0.25, seed=6)
        )
        cold = matcher.batch_match(
            queries, session.repository, 0.3, cache=False
        )
        assert _canonical(result.answer_sets) == _canonical(cold)

    def test_extend_rejects_duplicates(self, workload, queries):
        matcher = ExhaustiveMatcher(workload.objective)
        session = EvolutionSession(matcher, queries[:2], 0.3, cache=False)
        session.match(workload.repository)
        with pytest.raises(MatchingError, match="already tracked"):
            session.extend([queries[0]])
        with pytest.raises(MatchingError, match="already tracked"):
            session.extend([queries[2], queries[2]])

    def test_extend_before_match_raises(self, workload, queries):
        session = EvolutionSession(
            ExhaustiveMatcher(workload.objective), queries[:1], 0.3
        )
        with pytest.raises(MatchingError, match="call match"):
            session.extend(queries[1:2])

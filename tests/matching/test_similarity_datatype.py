"""Unit tests for datatype penalties."""

import itertools

from repro.matching.similarity.datatype import datatype_penalty
from repro.schema.model import Datatype


class TestDatatypePenalty:
    def test_identity_is_free(self):
        for datatype in Datatype:
            assert datatype_penalty(datatype, datatype) == 0.0

    def test_symmetric(self):
        for a, b in itertools.product(Datatype, repeat=2):
            assert datatype_penalty(a, b) == datatype_penalty(b, a)

    def test_numeric_family_cheap(self):
        assert datatype_penalty(Datatype.INTEGER, Datatype.DECIMAL) == 0.10

    def test_textual_family_cheap(self):
        assert datatype_penalty(Datatype.STRING, Datatype.IDENTIFIER) == 0.20

    def test_container_vs_leaf_expensive(self):
        assert datatype_penalty(Datatype.COMPLEX, Datatype.STRING) == 0.80
        assert datatype_penalty(Datatype.COMPLEX, Datatype.DATE) == 0.80

    def test_default_for_odd_pairs(self):
        assert datatype_penalty(Datatype.DATE, Datatype.BOOLEAN) == 0.50

    def test_all_pairs_in_range(self):
        for a, b in itertools.product(Datatype, repeat=2):
            assert 0.0 <= datatype_penalty(a, b) <= 1.0

    def test_family_cheaper_than_default(self):
        cross_family = datatype_penalty(Datatype.INTEGER, Datatype.DECIMAL)
        odd = datatype_penalty(Datatype.DATE, Datatype.BOOLEAN)
        assert cross_family < odd

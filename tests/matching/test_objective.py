"""Unit tests for the shared objective function Δ."""

import pytest

from repro.errors import MatchingError, ObjectiveMismatchError
from repro.matching.mapping import Mapping
from repro.matching.objective import ObjectiveFunction, ObjectiveWeights
from repro.matching.similarity.name import NameSimilarity, Thesaurus
from repro.schema.model import Datatype, Schema, SchemaElement
from repro.schema.repository import SchemaRepository


def query() -> Schema:
    root = SchemaElement("author", Datatype.COMPLEX)
    root.add_child(SchemaElement("last-name"))
    root.add_child(SchemaElement("first-name"))
    return Schema("q", root)


def repository() -> SchemaRepository:
    root = SchemaElement("writer", Datatype.COMPLEX)
    root.add_child(SchemaElement("last-name"))
    root.add_child(SchemaElement("first-name"))
    root.add_child(SchemaElement("price", Datatype.DECIMAL))
    return SchemaRepository("r", [Schema("s", root)])


def objective() -> ObjectiveFunction:
    return ObjectiveFunction(NameSimilarity())


class TestWeights:
    def test_defaults_valid(self):
        ObjectiveWeights()

    def test_negative_rejected(self):
        with pytest.raises(MatchingError):
            ObjectiveWeights(name=-1)

    def test_zero_sum_rejected(self):
        with pytest.raises(MatchingError):
            ObjectiveWeights(name=0, datatype=0)

    def test_structure_below_one(self):
        with pytest.raises(MatchingError):
            ObjectiveWeights(structure=1.0)


class TestElementCost:
    def test_identical_name_and_type_is_free(self):
        repo = repository()
        cost = objective().element_cost(
            query().element(1), repo.handle("s", 1)
        )
        assert cost == 0.0

    def test_type_mismatch_costs(self):
        repo = repository()
        cost = objective().element_cost(query().element(1), repo.handle("s", 3))
        assert cost > 0.0

    def test_cost_in_unit_interval(self):
        repo = repository()
        obj = objective()
        for i in range(3):
            for j in range(4):
                assert 0.0 <= obj.element_cost(
                    query().element(i), repo.handle("s", j)
                ) <= 1.0

    def test_cost_matrix_shape(self):
        matrix = objective().cost_matrix(query(), repository().schema("s"))
        assert len(matrix) == 3
        assert all(len(row) == 4 for row in matrix)


class TestMappingCost:
    def test_structure_preserving_cheaper(self):
        repo = repository()
        obj = objective()
        good = Mapping(
            "q", (repo.handle("s", 0), repo.handle("s", 1), repo.handle("s", 2))
        )
        # map 'author' to a leaf and children to unrelated places
        bad = Mapping(
            "q", (repo.handle("s", 3), repo.handle("s", 1), repo.handle("s", 2))
        )
        assert obj.mapping_cost(query(), good) < obj.mapping_cost(query(), bad)

    def test_perfect_mapping_near_zero_with_thesaurus(self):
        repo = repository()
        thesaurus_objective = ObjectiveFunction(
            NameSimilarity(Thesaurus([("author", "writer")]))
        )
        mapping = Mapping(
            "q", (repo.handle("s", 0), repo.handle("s", 1), repo.handle("s", 2))
        )
        cost = thesaurus_objective.mapping_cost(query(), mapping)
        assert cost < 0.05  # thesaurus covers the author/writer gap

    def test_synonym_without_thesaurus_is_expensive(self):
        # the ramp zeroes weak lexical similarity: unsupported synonyms
        # cost nearly the full name weight — the realism knob of the setup
        repo = repository()
        mapping = Mapping(
            "q", (repo.handle("s", 0), repo.handle("s", 1), repo.handle("s", 2))
        )
        assert objective().mapping_cost(query(), mapping) > 0.15

    def test_arity_checked(self):
        repo = repository()
        mapping = Mapping("q", (repo.handle("s", 0),))
        with pytest.raises(MatchingError, match="targets for a query"):
            objective().mapping_cost(query(), mapping)

    def test_structure_cost_full_assignment_required(self):
        with pytest.raises(MatchingError):
            objective().structure_cost(query(), repository().schema("s"), [0, None, 2])

    def test_single_element_query_no_structure_term(self):
        repo = repository()
        single = Schema("q1", SchemaElement("price", Datatype.DECIMAL))
        mapping = Mapping("q1", (repo.handle("s", 3),))
        assert objective().mapping_cost(single, mapping) == 0.0

    def test_combine_rounds_for_cross_matcher_equality(self):
        obj = objective()
        a = obj.combine(0.1 + 0.2, 3, 0.0)  # float noise in the sum
        b = obj.combine(0.3, 3, 0.0)
        assert a == b


class TestFingerprint:
    def test_same_config_same_fingerprint(self):
        sim = NameSimilarity()
        assert (
            ObjectiveFunction(sim).fingerprint()
            == ObjectiveFunction(sim).fingerprint()
        )

    def test_weight_changes_fingerprint(self):
        sim = NameSimilarity()
        a = ObjectiveFunction(sim)
        b = ObjectiveFunction(sim, ObjectiveWeights(structure=0.4))
        assert a.fingerprint() != b.fingerprint()

    def test_check_same_as_raises_on_mismatch(self):
        sim = NameSimilarity()
        a = ObjectiveFunction(sim)
        b = ObjectiveFunction(sim, ObjectiveWeights(structure=0.4))
        with pytest.raises(ObjectiveMismatchError):
            a.check_same_as(b)

    def test_check_same_as_passes(self):
        sim = NameSimilarity()
        ObjectiveFunction(sim).check_same_as(ObjectiveFunction(sim))

"""Unit tests of the similarity substrate (matrix, index, cache).

The substrate's contract is speed without semantic change: matrix
entries are bit-identical to the direct objective computation, candidate
orders match the engine's sort, the token index groups and indexes
exactly the repository's labels, and the per-objective cache reuses both
across matchers.  Answer-set identity under the substrate is covered by
``tests/properties/test_prop_substrate.py``.
"""

import pytest

from repro.errors import MatchingError
from repro.matching import ExhaustiveMatcher, SchemaSearch
from repro.matching.objective import ObjectiveFunction
from repro.matching.similarity.matrix import (
    ScoreMatrix,
    SimilaritySubstrate,
    TokenIndex,
    set_substrate_enabled,
    substrate_disabled,
    substrate_enabled,
)
from repro.matching.similarity.name import NameSimilarity, Thesaurus
from repro.schema.generator import GeneratorConfig, generate_repository
from repro.schema.model import Datatype, Schema, SchemaElement
from repro.schema.mutations import extract_personal_schema
from repro.schema.repository import SchemaRepository
from repro.schema.vocabulary import builtin_domains
from repro.util import rng


@pytest.fixture(scope="module")
def setup():
    repo = generate_repository(
        GeneratorConfig(num_schemas=5, min_size=6, max_size=11, seed=23)
    )
    thesaurus = Thesaurus.from_vocabularies(
        builtin_domains().values(), coverage=0.7, seed=9
    )
    objective = ObjectiveFunction(NameSimilarity(thesaurus))
    query = extract_personal_schema(
        rng.make_tagged(77),
        repo.schemas()[0],
        None,
        target_size=3,
        schema_id="substrate-query",
    )
    return repo, objective, query


def _handmade_repository():
    root = SchemaElement("order", Datatype.COMPLEX)
    root.add_child(SchemaElement("orderNumber", Datatype.IDENTIFIER))
    root.add_child(SchemaElement("shipDate", Datatype.DATE))
    root.add_child(SchemaElement("shipDate", Datatype.DATE))  # duplicate label
    other = SchemaElement("customer", Datatype.COMPLEX)
    other.add_child(SchemaElement("customerName", Datatype.STRING))
    return SchemaRepository(
        "handmade", [Schema("orders", root), Schema("customers", other)]
    )


class TestTokenIndex:
    def test_postings_cover_all_label_tokens(self):
        repo = _handmade_repository()
        index = TokenIndex(repo)
        assert index.elements_with_token("order") == frozenset(
            {("orders", 0), ("orders", 1)}
        )
        assert index.elements_with_token("ship") == frozenset(
            {("orders", 2), ("orders", 3)}
        )
        assert index.elements_with_token("nope") == frozenset()

    def test_candidate_keys_union_over_tokens(self):
        index = TokenIndex(_handmade_repository())
        keys = index.candidate_keys("customer order")
        assert ("customers", 0) in keys and ("orders", 0) in keys

    def test_column_groups_merge_identical_labels(self):
        repo = _handmade_repository()
        index = TokenIndex(repo)
        groups = dict(index.column_groups(repo.schema("orders")))
        assert groups[2] == (2, 3)  # the two shipDate leaves share a group

    def test_column_groups_guarded_by_content_digest(self):
        repo = _handmade_repository()
        index = TokenIndex(repo)
        impostor = Schema("orders", SchemaElement("different", Datatype.COMPLEX))
        assert index.column_groups(impostor) is None

    def test_distinct_labels_counted(self):
        index = TokenIndex(_handmade_repository())
        assert index.distinct_labels == 5  # 6 elements, one duplicated label
        assert "order" in index.tokens()


class TestScoreMatrix:
    def test_costs_bit_identical_to_objective(self, setup):
        repo, objective, query = setup
        for schema in repo:
            matrix = ScoreMatrix.build(objective, query, schema)
            direct = objective.cost_matrix(query, schema)
            assert [list(row) for row in matrix.costs] == direct

    def test_candidate_order_matches_engine_sort(self, setup):
        repo, objective, query = setup
        schema = repo.schemas()[1]
        matrix = ScoreMatrix.build(objective, query, schema)
        costs = objective.cost_matrix(query, schema)
        for i in range(len(query)):
            expected = sorted(
                range(len(schema)), key=lambda j: (costs[i][j], j)
            )
            assert list(matrix.candidate_order[i]) == expected

    def test_minima_and_suffix_sums(self, setup):
        repo, objective, query = setup
        schema = repo.schemas()[2]
        matrix = ScoreMatrix.build(objective, query, schema)
        assert matrix.row_min == tuple(min(row) for row in matrix.costs)
        assert matrix.min_rest[-1] == 0.0
        for i in range(matrix.query_size):
            assert matrix.min_rest[i] == pytest.approx(
                sum(matrix.row_min[i:])
            )
        assert matrix.schema_size == len(schema)

    def test_column_groups_do_not_change_entries(self, setup):
        _, objective, query = setup
        repo = _handmade_repository()
        index = TokenIndex(repo)
        schema = repo.schema("orders")
        grouped = ScoreMatrix.build(
            objective, query, schema, column_groups=index.column_groups(schema)
        )
        plain = ScoreMatrix.build(objective, query, schema)
        assert grouped.costs == plain.costs
        assert grouped.candidate_order == plain.candidate_order


class TestSimilaritySubstrate:
    def test_matrix_cached_by_content(self, setup):
        repo, objective, query = setup
        substrate = SimilaritySubstrate(objective)
        schema = repo.schemas()[0]
        first = substrate.matrix(query, schema)
        assert substrate.matrix(query, schema) is first
        assert substrate.matrix(query, schema.copy()) is first  # same content
        assert substrate.stats.matrices_built == 1
        assert substrate.stats.matrix_hits == 2
        assert 0 < substrate.stats.hit_rate < 1

    def test_prepare_idempotent_per_content(self, setup):
        repo, objective, _ = setup
        substrate = SimilaritySubstrate(objective)
        index = substrate.prepare(repo)
        assert substrate.prepare(repo) is index
        assert substrate.token_index() is index
        assert substrate.stats.index_builds == 1
        other = _handmade_repository()
        assert substrate.prepare(other) is not index
        assert substrate.stats.index_builds == 2

    def test_lru_eviction_bounded(self, setup):
        repo, objective, query = setup
        substrate = SimilaritySubstrate(objective, max_matrices=2)
        for schema in repo.schemas()[:4]:
            substrate.matrix(query, schema)
        assert len(substrate) == 2
        assert substrate.stats.matrix_evictions == 2
        substrate.clear()
        assert len(substrate) == 0 and substrate.token_index() is None

    def test_invalid_capacity_rejected(self, setup):
        _, objective, _ = setup
        with pytest.raises(MatchingError):
            SimilaritySubstrate(objective, max_matrices=0)

    def test_objective_owns_one_substrate(self, setup):
        _, objective, _ = setup
        assert objective.substrate() is objective.substrate()

    def test_enable_toggle_and_context(self):
        assert substrate_enabled()
        with substrate_disabled():
            assert not substrate_enabled()
        assert substrate_enabled()
        previous = set_substrate_enabled(False)
        assert previous is True and not substrate_enabled()
        set_substrate_enabled(True)

    def test_matcher_skips_substrate_when_disabled(self, setup):
        repo, objective, _ = setup
        matcher = ExhaustiveMatcher(objective)
        with substrate_disabled():
            assert matcher._substrate() is None
        assert matcher._substrate() is objective.substrate()


class TestEnginePruning:
    @pytest.mark.parametrize("delta", [0.0, 0.1, 0.25, 0.5, 1.0])
    def test_trimming_preserves_exhaustive_output(self, setup, delta):
        repo, objective, query = setup
        for schema in repo:
            pruned = SchemaSearch(
                query, schema, objective,
                substrate=objective.substrate(),
            )
            plain = SchemaSearch(query, schema, objective, prune=False)
            assert list(pruned.exhaustive(delta)) == list(plain.exhaustive(delta))

    @pytest.mark.parametrize("delta", [0.1, 0.3])
    def test_trimming_preserves_beam_output(self, setup, delta):
        repo, objective, query = setup
        for schema in repo:
            pruned = SchemaSearch(
                query, schema, objective, substrate=objective.substrate()
            )
            plain = SchemaSearch(query, schema, objective, prune=False)
            assert list(pruned.beam(delta, 6)) == list(plain.beam(delta, 6))

    def test_trimming_actually_drops_candidates(self, setup):
        repo, objective, query = setup
        schema = max(repo, key=len)
        search = SchemaSearch(
            query, schema, objective, substrate=objective.substrate()
        )
        ctx = search._context
        trimmed = search._trimmed_candidates(ctx, cutoff=0.05 + 1e-9)
        full = sum(len(ids) for ids in ctx.candidates)
        if trimmed is None:
            kept = 0
        else:
            kept = sum(len(ids) for ids in trimmed)
        assert kept < full  # a tight threshold must shrink the lists

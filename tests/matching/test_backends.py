"""Unit tests for the pluggable similarity backends."""

import pytest

from repro.errors import MatchingError
from repro.matching.objective import ObjectiveFunction, ObjectiveWeights
from repro.matching.registry import make_matcher
from repro.matching.similarity.backends import (
    EnsembleBackend,
    HashedVectorBackend,
    LexicalBackend,
    SparseBM25Backend,
    backends_disabled,
    backends_enabled,
)
from repro.matching.similarity.kernel import CostKernel
from repro.matching.similarity.matrix import TokenIndex
from repro.matching.similarity.name import NameSimilarity
from repro.schema.generator import GeneratorConfig, generate_repository


def _repository(seed=1, num_schemas=3):
    return generate_repository(
        GeneratorConfig(num_schemas=num_schemas, min_size=5, max_size=8, seed=seed)
    )


class TestSwitch:
    def test_context_manager_restores(self):
        assert backends_enabled()
        with backends_disabled():
            assert not backends_enabled()
        assert backends_enabled()


class TestLexicalBackend:
    def test_fingerprint_is_name_similarity_fingerprint(self):
        similarity = NameSimilarity()
        backend = LexicalBackend(similarity)
        assert backend.fingerprint() == similarity.fingerprint()

    def test_default_objective_fingerprint_unchanged(self):
        """The pre-backend fingerprint format, byte for byte."""
        similarity = NameSimilarity()
        objective = ObjectiveFunction(similarity)
        assert objective.fingerprint() == (
            "delta(name=0.8,dt=0.2,struct=0.25;"
            f"{similarity.fingerprint()})"
        )

    def test_delegates_scores(self):
        similarity = NameSimilarity()
        backend = LexicalBackend(similarity)
        assert backend.similarity("OrderId", "order_id") == similarity.similarity(
            "OrderId", "order_id"
        )
        assert not backend.corpus_sensitive
        assert backend.corpus_token() == ""


class TestSparseBM25Backend:
    def test_parameter_validation(self):
        with pytest.raises(MatchingError):
            SparseBM25Backend(k1=-0.1)
        with pytest.raises(MatchingError):
            SparseBM25Backend(b=1.5)

    def test_basic_properties(self):
        backend = SparseBM25Backend()
        backend.prepare(_repository())
        assert backend.similarity("customer name", "customer name") == 1.0
        score = backend.similarity("customer name", "customer address")
        assert 0.0 <= score <= 1.0
        assert score == backend.similarity("customer address", "customer name")
        assert backend.similarity("customer name", "zzz qqq") == 0.0

    def test_unprepared_degrades_to_token_jaccard(self):
        backend = SparseBM25Backend()
        assert backend.similarity("alpha beta", "beta gamma") == pytest.approx(
            1.0 / 3.0
        )

    def test_index_and_scan_paths_agree(self):
        repository = _repository(seed=4)
        index = TokenIndex(repository)
        via_index = SparseBM25Backend()
        via_index.prepare(repository, index)
        via_scan = SparseBM25Backend()
        via_scan.prepare(repository)
        assert via_index.corpus_token() == via_scan.corpus_token()
        labels = [
            element.name
            for schema in repository
            for element in schema.elements()
        ]
        for a in labels[:5]:
            for b in labels[:5]:
                assert via_index.similarity(a, b) == via_scan.similarity(a, b)

    def test_corpus_token_tracks_repository(self):
        backend = SparseBM25Backend()
        assert backend.corpus_token() == ""
        backend.prepare(_repository(seed=1))
        first = backend.corpus_token()
        assert first
        backend.prepare(_repository(seed=1))  # idempotent
        assert backend.corpus_token() == first
        backend.prepare(_repository(seed=2))
        assert backend.corpus_token() != first

    def test_fingerprint_is_config_only(self):
        backend = SparseBM25Backend(k1=1.2, b=0.5)
        before = backend.fingerprint()
        backend.prepare(_repository())
        assert backend.fingerprint() == before
        assert backend.fingerprint() != SparseBM25Backend().fingerprint()


class TestHashedVectorBackend:
    def test_parameter_validation(self):
        with pytest.raises(MatchingError):
            HashedVectorBackend(dim=0)
        with pytest.raises(MatchingError):
            HashedVectorBackend(n=0)

    def test_basic_properties(self):
        backend = HashedVectorBackend()
        assert backend.similarity("OrderId", "order_id") == 1.0  # same normalised
        score = backend.similarity("customer name", "customer names")
        assert 0.0 < score < 1.0
        assert score == backend.similarity("customer names", "customer name")
        assert backend.similarity("", "anything") == 0.0
        assert not backend.corpus_sensitive

    def test_deterministic_across_instances(self):
        a = HashedVectorBackend()
        b = HashedVectorBackend()
        assert a.similarity("unit price", "unit cost") == b.similarity(
            "unit price", "unit cost"
        )

    def test_dim_changes_fingerprint_and_scores_possible(self):
        assert (
            HashedVectorBackend(dim=64).fingerprint()
            != HashedVectorBackend(dim=256).fingerprint()
        )


class TestEnsembleBackend:
    def test_validation(self):
        lex = LexicalBackend(NameSimilarity())
        with pytest.raises(MatchingError):
            EnsembleBackend([], [])
        with pytest.raises(MatchingError):
            EnsembleBackend([lex], [0.5, 0.5])
        with pytest.raises(MatchingError):
            EnsembleBackend([lex], [-1.0])
        with pytest.raises(MatchingError):
            EnsembleBackend([lex, HashedVectorBackend()], [0.0, 0.0])

    def test_weighted_mean(self):
        lex = LexicalBackend(NameSimilarity())
        dense = HashedVectorBackend()
        ensemble = EnsembleBackend([lex, dense], [3.0, 1.0])
        a, b = "customer name", "client name"
        expected = (
            3.0 * lex.similarity(a, b) + 1.0 * dense.similarity(a, b)
        ) / 4.0
        assert ensemble.similarity(a, b) == pytest.approx(expected)
        assert not ensemble.corpus_sensitive

    def test_corpus_sensitivity_composes(self):
        ensemble = EnsembleBackend(
            [HashedVectorBackend(), SparseBM25Backend()], [1.0, 1.0]
        )
        assert ensemble.corpus_sensitive
        assert ensemble.corpus_token() == "|"  # unprepared components
        ensemble.prepare(_repository())
        token = ensemble.corpus_token()
        assert token.startswith("|") and len(token) > 1

    def test_fingerprint_renders_weights_and_components(self):
        lex = LexicalBackend(NameSimilarity())
        fingerprint = EnsembleBackend([lex], [2.0]).fingerprint()
        assert fingerprint == f"ensemble(2.0*{lex.fingerprint()})"


class TestObjectiveIntegration:
    def test_with_backend_derives_fresh_objective(self):
        base = ObjectiveFunction(NameSimilarity(), ObjectiveWeights(0.7, 0.3, 0.2))
        derived = base.with_backend(SparseBM25Backend())
        assert derived.name_similarity is base.name_similarity
        assert derived.weights is base.weights
        assert derived.fingerprint() != base.fingerprint()
        assert derived.substrate() is not base.substrate()
        assert derived.corpus_sensitive
        assert not base.corpus_sensitive

    def test_seam_off_matches_backend_route(self):
        objective = ObjectiveFunction(NameSimilarity())
        on = objective.label_cost("customer name", None, "client name", None)
        with backends_disabled():
            off = objective.label_cost("customer name", None, "client name", None)
        assert on == off

    def test_non_lexical_ignores_seam_switch(self):
        objective = ObjectiveFunction(
            NameSimilarity(), backend=HashedVectorBackend()
        )
        on = objective.label_cost("unit price", None, "unit cost", None)
        with backends_disabled():
            off = objective.label_cost("unit price", None, "unit cost", None)
        assert on == off


class TestKernelCorpusGate:
    def test_migration_refuses_foreign_corpus_rows(self):
        repo_a, repo_b = _repository(seed=1), _repository(seed=2)
        objective = ObjectiveFunction(
            NameSimilarity(), backend=SparseBM25Backend()
        )
        objective.prepare_corpus(repo_a)
        kernel_a = CostKernel(objective, repo_a)
        kernel_a.row("customer name", repo_a.schemas()[0].element(0).datatype)
        assert kernel_a.rows_cached == 1
        objective.prepare_corpus(repo_b)
        kernel_b = CostKernel(objective, repo_b, previous=kernel_a)
        assert kernel_b.rows_migrated == 0  # corpus token moved

    def test_migration_carries_same_corpus_rows(self):
        repository = _repository(seed=3)
        objective = ObjectiveFunction(
            NameSimilarity(), backend=SparseBM25Backend()
        )
        objective.prepare_corpus(repository)
        first = CostKernel(objective, repository)
        first.row("customer name", repository.schemas()[0].element(0).datatype)
        second = CostKernel(objective, repository, previous=first)
        assert second.rows_migrated == 1


class TestRegistryVariants:
    def test_variant_names_and_derivation(self):
        objective = ObjectiveFunction(NameSimilarity())
        for name, kind in (
            ("bm25", "bm25"),
            ("dense", "dense"),
            ("ensemble", "ensemble"),
        ):
            matcher = make_matcher(name, objective)
            assert matcher.name == name
            assert matcher.objective is not objective
            assert matcher.objective.backend.kind == kind
            assert matcher.objective.name_similarity is objective.name_similarity

    def test_variant_parameters_reach_backend(self):
        objective = ObjectiveFunction(NameSimilarity())
        matcher = make_matcher("bm25", objective, k1=1.1, b=0.4)
        assert "k1=1.1" in matcher.objective.fingerprint()
        dense = make_matcher("dense", objective, dim=64)
        assert "dim=64" in dense.objective.fingerprint()
        ensemble = make_matcher("ensemble", objective, lexical=1.0, bm25=0.0)
        assert ensemble.objective.backend.weights == [1.0, 0.0, 0.25]

    def test_variants_are_distinct_families(self):
        from repro.errors import ObjectiveMismatchError

        objective = ObjectiveFunction(NameSimilarity())
        bm25 = make_matcher("bm25", objective)
        dense = make_matcher("dense", objective)
        with pytest.raises(ObjectiveMismatchError):
            bm25.check_compatible(dense)
        # same configuration → same family, even across instances
        bm25.check_compatible(make_matcher("bm25", objective))

"""Edge cases of the vectorised execution path (and its spec twins).

The numpy layer's byte-identity proofs lean on structural facts —
stable sorts break ties by position, costs are finite, padding sorts
last — that degenerate inputs stress hardest.  This module pins the
degenerate corners: empty repositories, single-element schemas,
all-identical labels (maximal ties), the threshold extremes 0.0 and
1.0, and the finiteness regression the vector sort order depends on
(NaN orders differently under numpy's sort than python's, so a NaN in
a kernel row would be the first byte-identity break).

The vector primitives are also unit-tested directly against their spec
equivalents, on exactly the shapes the proofs argue about (ties at the
pivot, ``k >= n``, negative zero, empty input).
"""

import math

import pytest

from helpers.differential import (
    DifferentialWorkload,
    assert_combinations_identical,
    match_canonical,
)
from repro.errors import SchemaError
from repro.matching import numpy_available
from repro.matching.objective import ObjectiveFunction
from repro.matching.similarity import vectors
from repro.matching.similarity.kernel import CostKernel
from repro.matching.similarity.matrix import suffix_cost_sums
from repro.matching.similarity.name import NameSimilarity, Thesaurus
from repro.schema.generator import GeneratorConfig, generate_repository
from repro.schema.model import Datatype, Schema, SchemaElement
from repro.schema.mutations import extract_personal_schema
from repro.schema.repository import SchemaRepository
from repro.schema.vocabulary import builtin_domains
from repro.util import rng

_MATCHER_GRID = [
    ("exhaustive", {}),
    ("topk", {"candidates_per_element": 2}),
    ("hybrid", {"clusters_per_element": 2, "beam_width": 3}),
]


def _schema(schema_id: str, root_name: str, children) -> Schema:
    root = SchemaElement(root_name, Datatype.COMPLEX)
    for name, datatype in children:
        root.add_child(SchemaElement(name, datatype))
    return Schema(schema_id, root)


def _query(name: str = "query") -> Schema:
    return _schema(
        name,
        "person",
        [("name", Datatype.STRING), ("birth date", Datatype.DATE)],
    )


def _workload(repository, queries) -> DifferentialWorkload:
    return DifferentialWorkload(repository, tuple(queries), NameSimilarity())


class TestDegenerateWorkloads:
    def test_empty_repository_is_rejected(self):
        """The model forbids empty repositories — pin the invariant."""
        with pytest.raises(SchemaError):
            SchemaRepository("empty", [])

    def test_no_schema_large_enough(self):
        """Every schema smaller than the query: nothing matches, anywhere.

        The nearest legal degenerate to an empty repository — every
        per-schema search is skipped before any scoring work, on every
        toggle combination, and the canonical answer is the empty list.
        """
        repository = SchemaRepository(
            "undersized",
            [Schema("tiny", SchemaElement("name", Datatype.STRING))],
        )
        workload = _workload(repository, [_query()])
        for name, params in _MATCHER_GRID:
            assert_combinations_identical(name, params, workload)
            empty = match_canonical(name, params, workload, 0.45)
            assert empty == (repr([]).encode(),)

    def test_single_element_schemas(self):
        """One-element schemas and a one-element query still agree."""
        repository = SchemaRepository(
            "singletons",
            [
                Schema("lone-a", SchemaElement("name", Datatype.STRING)),
                Schema("lone-b", SchemaElement("title", Datatype.STRING)),
            ],
        )
        query = Schema("lone-q", SchemaElement("name", Datatype.STRING))
        workload = _workload(repository, [query])
        for name, params in _MATCHER_GRID:
            assert_combinations_identical(name, params, workload)

    def test_all_identical_labels(self):
        """Maximal ties: every candidate order is pure tie-breaking."""
        children = [("amount", Datatype.DECIMAL)] * 6
        repository = SchemaRepository(
            "identical",
            [
                _schema("dup-a", "amounts", children),
                _schema("dup-b", "amounts", children + children[:2]),
            ],
        )
        query = _schema(
            "dup-q",
            "amounts",
            [("amount", Datatype.DECIMAL), ("amount", Datatype.DECIMAL)],
        )
        workload = _workload(repository, [query])
        for name, params in _MATCHER_GRID:
            assert_combinations_identical(name, params, workload)

    def test_threshold_extremes(self):
        """δ = 0.0 (exact only) and δ = 1.0 (everything) agree byte for byte."""
        repo = generate_repository(
            GeneratorConfig(num_schemas=3, min_size=4, max_size=7, seed=13)
        )
        query = extract_personal_schema(
            rng.make_tagged(5),
            repo.schemas()[0],
            None,
            target_size=3,
            schema_id="edge-threshold-query",
        )
        workload = _workload(repo, [query])
        for name, params in _MATCHER_GRID:
            assert_combinations_identical(
                name, params, workload, thresholds=(0.0, 1.0)
            )


class TestKernelRowFiniteness:
    def test_kernel_rows_never_contain_nan_or_inf(self):
        """The regression the vector sort order depends on.

        Objective costs live in [0, 1]; a NaN or inf entering a kernel
        row would sort differently under numpy than under python's
        tuple sort and silently break byte-identity — so finiteness is
        pinned here, over a thesaurus-bearing objective (the richest
        cost surface) and every distinct label in the universe.
        """
        repo = generate_repository(
            GeneratorConfig(num_schemas=5, min_size=5, max_size=10, seed=23)
        )
        thesaurus = Thesaurus.from_vocabularies(
            builtin_domains().values(), coverage=0.8, seed=23
        )
        kernel = CostKernel(ObjectiveFunction(NameSimilarity(thesaurus)), repo)
        for label, datatype in list(kernel._labels):
            row = kernel.row(label, datatype)
            assert len(row) == kernel.distinct_labels
            for value in row:
                assert math.isfinite(value), (label, datatype, value)
                assert 0.0 <= value <= 1.0, (label, datatype, value)

    def test_gathers_finite_and_consistent_across_modes(self):
        """Gathered matrix rows stay finite on both execution paths."""
        repo = generate_repository(
            GeneratorConfig(num_schemas=4, min_size=4, max_size=9, seed=29)
        )
        objective = ObjectiveFunction(NameSimilarity())
        kernel = CostKernel(objective, repo)
        spec_kernel = CostKernel(objective, repo)
        query = extract_personal_schema(
            rng.make_tagged(3),
            repo.schemas()[2],
            None,
            target_size=3,
            schema_id="edge-gather-query",
        )
        for element in query.elements():
            for schema in repo:
                gathered = kernel.gather(
                    element.name, element.datatype, schema
                )
                with vectors.numpy_disabled():
                    spec = spec_kernel.gather(
                        element.name, element.datatype, schema
                    )
                assert gathered == spec
                costs, order = gathered
                assert sorted(order) == list(range(len(schema)))
                for value in costs:
                    assert math.isfinite(value)


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
class TestVectorPrimitives:
    """The vector helpers against their spec equivalents, corner shapes."""

    ROWS = [
        [],
        [0.5],
        [0.0, 0.0, 0.0, 0.0],
        [1.0, 0.0, 1.0, 0.0],
        [0.25, -0.0, 0.25, 0.0, 1.0, 0.75, 0.25],
        [float(i % 7) / 7.0 for i in range(100)],
    ]

    def test_stable_order_matches_tuple_sort(self):
        for row in self.ROWS:
            spec = [j for _, j in sorted(zip(row, range(len(row))))]
            assert vectors.stable_order(row).tolist() == spec

    def test_suffix_sums_match_spec_accumulation(self):
        for row in self.ROWS:
            with vectors.numpy_disabled():
                spec = suffix_cost_sums(row)
            assert vectors.suffix_sums(row) == spec
            assert vectors.suffix_sums(row)[len(row)] == 0.0

    def test_topk_matches_sort_cut(self):
        for row in self.ROWS:
            for k in (1, 2, 3, len(row), len(row) + 5):
                spec = sorted(
                    range(len(row)), key=lambda j: (row[j], j)
                )[:k]
                assert vectors.topk_indices(row, k) == spec

    def test_suffix_sums_preserve_float_chain(self):
        """The cumsum fold replays the spec's exact addition order."""
        row = [0.1, 0.2, 0.3, 0.1, 0.7, 0.123456789, 1e-17, 0.5]
        with vectors.numpy_disabled():
            spec = suffix_cost_sums(row)
        observed = vectors.suffix_sums(row)
        assert [repr(value) for value in observed] == [
            repr(value) for value in spec
        ]

    def test_vector_thresholds_override_and_restore(self):
        before = (vectors.VECTOR_MIN, vectors.VECTOR_MIN_AREA)
        with vectors.vector_thresholds(0, 0):
            assert (vectors.VECTOR_MIN, vectors.VECTOR_MIN_AREA) == (0, 0)
        assert (vectors.VECTOR_MIN, vectors.VECTOR_MIN_AREA) == before

    def test_set_numpy_enabled_returns_previous(self):
        previous = vectors.set_numpy_enabled(False)
        try:
            assert not vectors.numpy_enabled()
            assert vectors.set_numpy_enabled(previous) is False
        finally:
            vectors.set_numpy_enabled(previous)
        assert vectors.numpy_enabled() == (previous and numpy_available())

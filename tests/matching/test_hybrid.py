"""Unit tests for the hybrid (clustering + beam) matcher."""

import pytest

from repro.errors import MatchingError
from repro.matching import (
    BeamMatcher,
    ClusteringMatcher,
    ExhaustiveMatcher,
    HybridMatcher,
)
from repro.matching.objective import ObjectiveFunction
from repro.matching.similarity.name import NameSimilarity, Thesaurus
from repro.schema.generator import GeneratorConfig, generate_repository
from repro.schema.mutations import extract_personal_schema
from repro.schema.vocabulary import builtin_domains
from repro.util import rng


@pytest.fixture(scope="module")
def setup():
    repo = generate_repository(
        GeneratorConfig(num_schemas=8, min_size=8, max_size=16, seed=42)
    )
    thesaurus = Thesaurus.from_vocabularies(
        builtin_domains().values(), coverage=0.7, seed=5
    )
    objective = ObjectiveFunction(NameSimilarity(thesaurus))
    query = extract_personal_schema(
        rng.make_tagged(30), repo.schemas()[0], None, target_size=3,
        schema_id="hq",
    )
    return repo, objective, query


class TestHybridMatcher:
    def test_subset_of_exhaustive(self, setup):
        repo, objective, query = setup
        exhaustive = ExhaustiveMatcher(objective).match(query, repo, 0.35)
        hybrid = HybridMatcher(objective).match(query, repo, 0.35)
        hybrid.check_subset_of(exhaustive, "hybrid")
        hybrid.check_scores_match(exhaustive)

    def test_subset_of_each_component(self, setup):
        repo, objective, query = setup
        clustering = ClusteringMatcher(objective, clusters_per_element=3).match(
            query, repo, 0.35
        )
        beam = BeamMatcher(objective, beam_width=8).match(query, repo, 0.35)
        hybrid = HybridMatcher(
            objective, clusters_per_element=3, beam_width=8
        ).match(query, repo, 0.35)
        hybrid.check_subset_of(clustering, "hybrid-vs-clustering")
        # dominated by the stricter component at every threshold size
        for delta in (0.15, 0.25, 0.35):
            assert hybrid.size_at(delta) <= min(
                clustering.size_at(delta), beam.size_at(delta)
            )

    def test_wide_parameters_approach_clustering(self, setup):
        repo, objective, query = setup
        clustering = ClusteringMatcher(objective, clusters_per_element=3).match(
            query, repo, 0.3
        )
        hybrid = HybridMatcher(
            objective, clusters_per_element=3, beam_width=10_000
        ).match(query, repo, 0.3)
        assert hybrid.items() == clustering.items()

    def test_invalid_beam_width(self, setup):
        _repo, objective, _query = setup
        with pytest.raises(MatchingError):
            HybridMatcher(objective, beam_width=0)

    def test_describe_includes_both_parameters(self, setup):
        _repo, objective, _query = setup
        description = HybridMatcher(objective).describe()
        assert description["system"] == "hybrid"
        assert "beam_width" in description
        assert "clusters_per_element" in description

    def test_registered(self, setup):
        from repro.matching.registry import available_matchers, make_matcher

        _repo, objective, _query = setup
        assert "hybrid" in available_matchers()
        matcher = make_matcher("hybrid", objective, beam_width=4)
        assert matcher.beam_width == 4

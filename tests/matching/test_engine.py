"""Unit tests for the search engine: B&B exactness and beam subsetting.

The exhaustiveness claim ("returns ALL mappings with Δ ≤ δ") is checked
against a brute-force enumerator on small schemas — the single most
important test of the matching substrate, since the whole bounds
technique assumes S1 truly is exhaustive.
"""

import itertools

import pytest

from repro.errors import MatchingError
from repro.matching.engine import SchemaSearch, count_assignments
from repro.matching.mapping import Mapping
from repro.matching.objective import ObjectiveFunction, ObjectiveWeights
from repro.matching.similarity.name import NameSimilarity
from repro.schema.generator import GeneratorConfig, generate_repository
from repro.schema.model import Schema, SchemaElement
from repro.schema.mutations import extract_personal_schema
from repro.schema.repository import ElementHandle
from repro.util import rng


def brute_force(query, schema, objective, delta_max):
    """Reference enumeration of all injective assignments."""
    out = {}
    ids = range(len(schema))
    for combo in itertools.permutations(ids, len(query)):
        handles = tuple(ElementHandle(schema, j) for j in combo)
        mapping = Mapping(query.schema_id, handles)
        score = objective.mapping_cost(query, mapping)
        if score <= delta_max:
            out[combo] = score
    return out


def small_objective() -> ObjectiveFunction:
    return ObjectiveFunction(NameSimilarity())


class TestCountAssignments:
    def test_falling_factorial(self):
        assert count_assignments(2, 4) == 12
        assert count_assignments(3, 3) == 6

    def test_query_larger_than_schema(self):
        assert count_assignments(4, 3) == 0

    def test_zero_query(self):
        assert count_assignments(0, 5) == 1

    def test_negative_rejected(self):
        with pytest.raises(MatchingError):
            count_assignments(-1, 3)


class TestExhaustiveAgainstBruteForce:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    @pytest.mark.parametrize("delta_max", [0.15, 0.3, 0.5])
    def test_exhaustive_equals_brute_force(self, seed, delta_max):
        repo = generate_repository(
            GeneratorConfig(num_schemas=2, min_size=5, max_size=8, seed=seed)
        )
        schema = repo.schemas()[0]
        query = extract_personal_schema(
            rng.make_tagged(seed + 100), repo.schemas()[1], None, target_size=3
        )
        objective = small_objective()
        expected = brute_force(query, schema, objective, delta_max)
        got = dict(SchemaSearch(query, schema, objective).exhaustive(delta_max))
        assert got == expected

    def test_exhaustive_with_structure_heavy_weights(self):
        repo = generate_repository(
            GeneratorConfig(num_schemas=2, min_size=5, max_size=7, seed=9)
        )
        schema = repo.schemas()[0]
        query = extract_personal_schema(
            rng.make_tagged(77), repo.schemas()[1], None, target_size=3
        )
        objective = ObjectiveFunction(
            NameSimilarity(), ObjectiveWeights(structure=0.6)
        )
        expected = brute_force(query, schema, objective, 0.45)
        got = dict(SchemaSearch(query, schema, objective).exhaustive(0.45))
        assert got == expected


class TestEngineEdgeCases:
    def test_schema_smaller_than_query_yields_nothing(self):
        query_root = SchemaElement("a")
        query_root.add_child(SchemaElement("b"))
        query = Schema("q", query_root)
        schema = Schema("s", SchemaElement("only"))
        search = SchemaSearch(query, schema, small_objective())
        assert list(search.exhaustive(1.0)) == []

    def test_empty_candidate_list_yields_nothing(self):
        query = Schema("q", SchemaElement("a"))
        root = SchemaElement("r")
        root.add_child(SchemaElement("x"))
        schema = Schema("s", root)
        search = SchemaSearch(query, schema, small_objective(), allowed=[[]])
        assert list(search.exhaustive(1.0)) == []

    def test_allowed_restricts_targets(self):
        query = Schema("q", SchemaElement("a"))
        root = SchemaElement("a")
        root.add_child(SchemaElement("a2"))
        schema = Schema("s", root)
        search = SchemaSearch(query, schema, small_objective(), allowed=[[1]])
        results = list(search.exhaustive(1.0))
        assert [target_ids for target_ids, _ in results] == [(1,)]

    def test_restricted_is_subset_of_unrestricted(self):
        repo = generate_repository(
            GeneratorConfig(num_schemas=2, min_size=6, max_size=9, seed=6)
        )
        schema = repo.schemas()[0]
        query = extract_personal_schema(
            rng.make_tagged(55), repo.schemas()[1], None, target_size=3
        )
        objective = small_objective()
        full = dict(SchemaSearch(query, schema, objective).exhaustive(0.5))
        allowed = [list(range(0, len(schema), 2))] * len(query)
        restricted = dict(
            SchemaSearch(query, schema, objective, allowed=allowed).exhaustive(0.5)
        )
        assert set(restricted) <= set(full)
        for key, score in restricted.items():
            assert score == full[key]

    def test_scores_never_exceed_threshold(self):
        repo = generate_repository(
            GeneratorConfig(num_schemas=1, min_size=8, max_size=10, seed=8)
        )
        schema = repo.schemas()[0]
        query = extract_personal_schema(
            rng.make_tagged(11), schema, None, target_size=3
        )
        for _ids, score in SchemaSearch(query, schema, small_objective()).exhaustive(
            0.3
        ):
            assert score <= 0.3 + 1e-9

    def test_injectivity_of_results(self):
        repo = generate_repository(
            GeneratorConfig(num_schemas=1, min_size=8, max_size=10, seed=12)
        )
        schema = repo.schemas()[0]
        query = extract_personal_schema(
            rng.make_tagged(13), schema, None, target_size=3
        )
        for ids, _score in SchemaSearch(query, schema, small_objective()).exhaustive(
            0.5
        ):
            assert len(set(ids)) == len(ids)


class TestBeam:
    def test_beam_is_subset_with_same_scores(self):
        repo = generate_repository(
            GeneratorConfig(num_schemas=2, min_size=6, max_size=10, seed=14)
        )
        schema = repo.schemas()[0]
        query = extract_personal_schema(
            rng.make_tagged(15), repo.schemas()[1], None, target_size=3
        )
        objective = small_objective()
        search = SchemaSearch(query, schema, objective)
        full = dict(search.exhaustive(0.5))
        beam = dict(search.beam(0.5, beam_width=4))
        assert set(beam) <= set(full)
        for key, score in beam.items():
            assert score == full[key]

    def test_wide_beam_equals_exhaustive(self):
        repo = generate_repository(
            GeneratorConfig(num_schemas=2, min_size=5, max_size=7, seed=16)
        )
        schema = repo.schemas()[0]
        query = extract_personal_schema(
            rng.make_tagged(17), repo.schemas()[1], None, target_size=2
        )
        objective = small_objective()
        search = SchemaSearch(query, schema, objective)
        full = dict(search.exhaustive(0.4))
        beam = dict(search.beam(0.4, beam_width=10_000))
        assert beam == full

    def test_beam_width_monotone(self):
        repo = generate_repository(
            GeneratorConfig(num_schemas=2, min_size=6, max_size=9, seed=18)
        )
        schema = repo.schemas()[0]
        query = extract_personal_schema(
            rng.make_tagged(19), repo.schemas()[1], None, target_size=3
        )
        objective = small_objective()
        search = SchemaSearch(query, schema, objective)
        sizes = [
            len(list(search.beam(0.5, beam_width=w))) for w in (1, 4, 16, 64)
        ]
        assert sizes == sorted(sizes)

    def test_invalid_beam_width(self):
        query = Schema("q", SchemaElement("a"))
        schema = Schema("s", SchemaElement("b"))
        search = SchemaSearch(query, schema, small_objective())
        with pytest.raises(MatchingError):
            list(search.beam(0.5, beam_width=0))

"""Unit tests for structural (ancestry) similarity."""

import pytest

from repro.errors import MatchingError
from repro.matching.similarity.structure import ancestry_violations, query_edges
from repro.schema.model import Schema, SchemaElement


def query() -> Schema:
    root = SchemaElement("book")
    author = root.add_child(SchemaElement("author"))
    author.add_child(SchemaElement("last"))
    root.add_child(SchemaElement("year"))
    return Schema("q", root)


def target() -> Schema:
    # library > book > (author > (last, first), year)
    library = SchemaElement("library")
    book = library.add_child(SchemaElement("book"))
    author = book.add_child(SchemaElement("author"))
    author.add_child(SchemaElement("last"))
    author.add_child(SchemaElement("first"))
    book.add_child(SchemaElement("year"))
    return Schema("t", library)


class TestQueryEdges:
    def test_edges_preorder(self):
        assert query_edges(query()) == [(0, 1), (1, 2), (0, 3)]

    def test_single_node_no_edges(self):
        assert query_edges(Schema("one", SchemaElement("x"))) == []


class TestAncestryViolations:
    def test_perfect_embedding(self):
        # book->1, author->2, last->3, year->5
        violations, decided = ancestry_violations(query(), target(), [1, 2, 3, 5])
        assert (violations, decided) == (0, 3)

    def test_embedding_with_skipped_levels(self):
        # book mapped to library (0): author (2) still a proper descendant
        violations, decided = ancestry_violations(query(), target(), [0, 2, 3, 5])
        assert violations == 0

    def test_inverted_edge_detected(self):
        # author mapped above book
        violations, _ = ancestry_violations(query(), target(), [2, 1, 3, 5])
        assert violations >= 1

    def test_sibling_mapping_violates(self):
        # 'last' mapped outside its parent's target subtree (to 'year')
        violations, decided = ancestry_violations(query(), target(), [1, 2, 5, 3])
        assert decided == 3
        assert violations == 1  # only the author->last edge is broken

    def test_partial_assignment_counts_decided_only(self):
        violations, decided = ancestry_violations(
            query(), target(), [1, None, 3, None]
        )
        assert decided == 0
        assert violations == 0

    def test_partial_with_one_decided_edge(self):
        violations, decided = ancestry_violations(
            query(), target(), [1, 2, None, None]
        )
        assert decided == 1
        assert violations == 0

    def test_arity_checked(self):
        with pytest.raises(MatchingError):
            ancestry_violations(query(), target(), [1, 2])

"""Socket-worker conformance: framing, byte-identity, fault injection.

Three layers of the remote transport, bottom up:

* **Framing** — every way a frame can be damaged (truncation, foreign
  magic, oversized length, payload bytes that do not hash to the header
  digest) raises :class:`~repro.errors.TransportError` loudly; a clean
  close between frames is the one tolerated end.
* **Byte-identity** — answers computed through
  :class:`~repro.matching.remote.RemoteShardExecutor` over live
  :class:`~repro.matching.remote.WorkerServer` instances, in both
  ``inline`` and ``store`` install modes, are byte-identical to the
  serial in-process path, and installed state is reused across sweeps.
* **Fault injection** — a worker crashing mid-shard gets its unit
  retried on a healthy worker with identical answers; a tampered or
  truncated stream (through :class:`helpers.faults.TamperProxy`) fails
  the run with :class:`~repro.errors.TransportError`, never a silently
  wrong answer; when every worker is gone, the executor refuses.
"""

from __future__ import annotations

import pickle
import socket
import time

import pytest

from helpers.faults import TamperProxy, cut_after, flip_byte
from repro.errors import TransportError
from repro.matching import RemoteShardExecutor, WorkerServer, make_matcher
from repro.matching import remote as remote_module
from repro.matching.remote import (
    CLOSED,
    MAGIC,
    PROTOCOL_VERSION,
    parse_address,
    recv_message,
    send_message,
)

pytestmark = pytest.mark.network


@pytest.fixture(scope="module")
def queries(small_workload):
    return [scenario.query for scenario in small_workload.suite.scenarios]


def _canonical(answer_sets) -> bytes:
    return repr(
        [
            [(answer.item.key, answer.score) for answer in answers.answers()]
            for answers in answer_sets
        ]
    ).encode()


def _serial_answers(small_workload, queries, name="exhaustive", params=None):
    matcher = make_matcher(name, small_workload.objective, **(params or {}))
    return matcher.batch_match(
        queries, small_workload.repository, 0.3, cache=False
    )


def _remote_answers(
    small_workload, queries, executor, name="exhaustive", params=None
):
    matcher = make_matcher(name, small_workload.objective, **(params or {}))
    return matcher.batch_match(
        queries,
        small_workload.repository,
        0.3,
        cache=False,
        shards=3,
        executor=executor,
    )


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------

@pytest.fixture()
def pair():
    a, b = socket.socketpair()
    yield a, b
    a.close()
    b.close()


class TestFraming:
    def test_round_trip(self, pair):
        a, b = pair
        send_message(a, {"op": "hello", "version": PROTOCOL_VERSION})
        assert recv_message(b) == {"op": "hello", "version": PROTOCOL_VERSION}

    def test_clean_eof_between_frames(self, pair):
        a, b = pair
        a.close()
        assert recv_message(b, eof_ok=True) is CLOSED
        with pytest.raises(TransportError, match="closed before a frame"):
            recv_message(b)

    def test_truncated_frame_raises(self, pair):
        a, b = pair
        payload = pickle.dumps({"op": "run"})
        frame = remote_module._HEADER.pack(
            MAGIC, len(payload), remote_module._digest(payload)
        ) + payload
        a.sendall(frame[:-3])  # drop the frame's last bytes
        a.close()
        with pytest.raises(TransportError, match="mid-frame"):
            recv_message(b, eof_ok=True)  # eof_ok covers *between* frames only

    def test_foreign_magic_raises(self, pair):
        a, b = pair
        a.sendall(b"HTTP" + b"\x00" * 20)
        with pytest.raises(TransportError, match="foreign frame magic"):
            recv_message(b)

    def test_oversized_length_raises(self, pair):
        a, b = pair
        a.sendall(
            remote_module._HEADER.pack(
                MAGIC, remote_module.MAX_FRAME + 1, b"\x00" * 16
            )
        )
        with pytest.raises(TransportError, match="MAX_FRAME"):
            recv_message(b)

    def test_tampered_payload_raises(self, pair):
        a, b = pair
        payload = pickle.dumps({"op": "result", "pairs": []})
        frame = remote_module._HEADER.pack(
            MAGIC, len(payload), remote_module._digest(payload)
        ) + payload
        tampered = bytearray(frame)
        tampered[-1] ^= 0xFF  # one flipped payload byte
        a.sendall(bytes(tampered))
        with pytest.raises(TransportError, match="does not hash"):
            recv_message(b)

    def test_parse_address(self):
        assert parse_address("127.0.0.1:9000") == ("127.0.0.1", 9000)
        assert parse_address(("localhost", "8080")) == ("localhost", 8080)
        with pytest.raises(TransportError, match="host:port"):
            parse_address("9000")
        with pytest.raises(TransportError, match="non-numeric"):
            parse_address("host:http")


# ---------------------------------------------------------------------------
# Byte-identity over live workers
# ---------------------------------------------------------------------------

class TestRemoteByteIdentity:
    @pytest.mark.parametrize(
        "name,params",
        [("exhaustive", {}), ("clustering", {"clusters_per_element": 2})],
    )
    def test_inline_matches_serial(self, small_workload, queries, name, params):
        workers = [WorkerServer().start() for _ in range(2)]
        try:
            executor = RemoteShardExecutor([w.address for w in workers])
            remote = _remote_answers(
                small_workload, queries, executor, name, params
            )
        finally:
            for worker in workers:
                worker.stop()
        serial = _serial_answers(small_workload, queries, name, params)
        assert _canonical(remote) == _canonical(serial)
        assert sum(w.stats.units for w in workers) == len(queries) * 3

    def test_store_mode_matches_serial(self, small_workload, queries, tmp_path):
        worker = WorkerServer().start()
        try:
            executor = RemoteShardExecutor(
                [worker.address], store=tmp_path / "snap"
            )
            remote = _remote_answers(small_workload, queries, executor)
        finally:
            worker.stop()
        assert _canonical(remote) == _canonical(
            _serial_answers(small_workload, queries)
        )
        # The worker pulled state from the store the coordinator wrote.
        assert (tmp_path / "snap").exists()
        assert worker.stats.installs == 1

    def test_state_reused_across_sweeps(self, small_workload, queries):
        worker = WorkerServer().start()
        try:
            executor = RemoteShardExecutor([worker.address])
            first = _remote_answers(small_workload, queries, executor)
            second = _remote_answers(small_workload, queries, executor)
        finally:
            worker.stop()
        assert _canonical(first) == _canonical(second)
        assert worker.stats.installs == 1
        assert worker.stats.installs_reused >= 1


# ---------------------------------------------------------------------------
# Fault injection
# ---------------------------------------------------------------------------

class _CrashingWorker(WorkerServer):
    """Dies abruptly — listener and every connection — on its first unit.

    The coordinator sent the unit and will never hear back: the
    connection drops mid-conversation, exactly like ``kill -9`` on a
    remote worker process between request and reply.
    """

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.crashed = False

    def _run(self, message):
        self.crashed = True
        self._stopping.set()
        self._close_listener()
        with self._lock:
            connections = list(self._connections)
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            conn.close()
        raise TransportError("injected crash mid-shard")


class _SlowFirstUnitWorker(WorkerServer):
    """Stalls its first unit so a peer is guaranteed to pick one up too."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self._stalled = False

    def _run(self, message):
        if not self._stalled:
            self._stalled = True
            time.sleep(0.3)
        return super()._run(message)


class TestFaultInjection:
    def test_worker_crash_mid_shard_is_retried(self, small_workload, queries):
        """The headline scenario: crash mid-shard, identical answers."""
        crasher = _CrashingWorker().start()
        healthy = _SlowFirstUnitWorker().start()
        try:
            executor = RemoteShardExecutor([crasher.address, healthy.address])
            remote = _remote_answers(small_workload, queries, executor)
        finally:
            crasher.stop()
            healthy.stop()
        assert crasher.crashed, "the fault never fired"
        # Every unit — including the one the crasher dropped — completed
        # on the healthy worker, and the answers are byte-identical.
        assert healthy.stats.units == len(queries) * 3
        assert _canonical(remote) == _canonical(
            _serial_answers(small_workload, queries)
        )

    def test_all_workers_gone_raises(self, small_workload, queries):
        crasher = _CrashingWorker().start()
        try:
            executor = RemoteShardExecutor([crasher.address])
            with pytest.raises(TransportError, match="remote workers are gone"):
                _remote_answers(small_workload, queries, executor)
        finally:
            crasher.stop()

    def test_tampered_stream_raises(self, small_workload, queries):
        """A flipped byte inside a reply frame: loud TransportError."""
        worker = WorkerServer().start()
        # Offset 30 lands inside the first reply's payload (24-byte
        # header + pickled {"op": "ready", ...}).
        with TamperProxy(worker.address, downstream=flip_byte(30)) as proxy:
            try:
                executor = RemoteShardExecutor([proxy.address])
                with pytest.raises(TransportError):
                    _remote_answers(small_workload, queries, executor)
            finally:
                worker.stop()

    def test_truncated_stream_raises(self, small_workload, queries):
        """A connection cut mid-header: loud TransportError."""
        worker = WorkerServer().start()
        with TamperProxy(worker.address, downstream=cut_after(10)) as proxy:
            try:
                executor = RemoteShardExecutor([proxy.address])
                with pytest.raises(TransportError):
                    _remote_answers(small_workload, queries, executor)
            finally:
                worker.stop()

    def test_upstream_tamper_never_executes(self, small_workload, queries):
        """Damage on the coordinator→worker leg: the worker refuses too."""
        worker = WorkerServer().start()
        with TamperProxy(worker.address, upstream=flip_byte(40)) as proxy:
            try:
                executor = RemoteShardExecutor([proxy.address])
                with pytest.raises(TransportError):
                    _remote_answers(small_workload, queries, executor)
            finally:
                worker.stop()
        assert worker.stats.units == 0


class TestVersionAndState:
    def test_version_mismatch_refused(self):
        worker = WorkerServer().start()
        try:
            sock = socket.create_connection(worker.address, timeout=5)
            send_message(sock, {"op": "hello", "version": 999})
            reply = recv_message(sock)
            sock.close()
        finally:
            worker.stop()
        assert reply["op"] == "error"
        assert "version mismatch" in reply["error"]

    def test_run_without_install_refused(self):
        worker = WorkerServer().start()
        try:
            sock = socket.create_connection(worker.address, timeout=5)
            send_message(sock, {
                "op": "run",
                "state_key": ("nope",),
                "query_index": 0,
                "schema_ids": (),
                "delta_max": 0.3,
            })
            reply = recv_message(sock)
            sock.close()
        finally:
            worker.stop()
        assert reply["op"] == "error"
        assert "no state installed" in reply["error"]

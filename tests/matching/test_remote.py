"""Socket-worker conformance: framing, byte-identity, fault injection.

Three layers of the remote transport, bottom up:

* **Framing** — every way a frame can be damaged (truncation, foreign
  magic, oversized length, payload bytes that do not hash to the header
  digest) raises :class:`~repro.errors.TransportError` loudly; a clean
  close between frames is the one tolerated end.
* **Byte-identity** — answers computed through
  :class:`~repro.matching.remote.RemoteShardExecutor` over live
  :class:`~repro.matching.remote.WorkerServer` instances, in both
  ``inline`` and ``store`` install modes, are byte-identical to the
  serial in-process path, and installed state is reused across sweeps.
* **Fault injection** — a worker crashing mid-shard gets its unit
  retried on a healthy worker with identical answers; a tampered or
  truncated stream (through :class:`helpers.faults.TamperProxy`) fails
  the run with :class:`~repro.errors.TransportError`, never a silently
  wrong answer; when every worker is gone, the executor refuses.
"""

from __future__ import annotations

import pickle
import socket
import threading
import time

import pytest

from helpers.faults import TamperProxy, cut_after, flip_byte, rewrite_frame
from repro.errors import TransportError
from repro.matching import RemoteShardExecutor, WorkerServer, make_matcher
from repro.matching import remote as remote_module
from repro.matching.executor import (
    ExecutionState,
    WorkUnit,
    current_switches,
)
from repro.matching.pipeline import matcher_fingerprint, schema_digest
from repro.matching.remote import (
    CLOSED,
    MAGIC,
    PROTOCOL_VERSION,
    DeadlineBudget,
    parse_address,
    recv_message,
    send_message,
)

pytestmark = pytest.mark.network


@pytest.fixture(scope="module")
def queries(small_workload):
    return [scenario.query for scenario in small_workload.suite.scenarios]


def _canonical(answer_sets) -> bytes:
    return repr(
        [
            [(answer.item.key, answer.score) for answer in answers.answers()]
            for answers in answer_sets
        ]
    ).encode()


def _serial_answers(small_workload, queries, name="exhaustive", params=None):
    matcher = make_matcher(name, small_workload.objective, **(params or {}))
    return matcher.batch_match(
        queries, small_workload.repository, 0.3, cache=False
    )


def _remote_answers(
    small_workload, queries, executor, name="exhaustive", params=None
):
    matcher = make_matcher(name, small_workload.objective, **(params or {}))
    return matcher.batch_match(
        queries,
        small_workload.repository,
        0.3,
        cache=False,
        shards=3,
        executor=executor,
    )


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------

@pytest.fixture()
def pair():
    a, b = socket.socketpair()
    yield a, b
    a.close()
    b.close()


class TestFraming:
    def test_round_trip(self, pair):
        a, b = pair
        send_message(a, {"op": "hello", "version": PROTOCOL_VERSION})
        assert recv_message(b) == {"op": "hello", "version": PROTOCOL_VERSION}

    def test_clean_eof_between_frames(self, pair):
        a, b = pair
        a.close()
        assert recv_message(b, eof_ok=True) is CLOSED
        with pytest.raises(TransportError, match="closed before a frame"):
            recv_message(b)

    def test_truncated_frame_raises(self, pair):
        a, b = pair
        payload = pickle.dumps({"op": "run"})
        frame = remote_module._HEADER.pack(
            MAGIC, len(payload), remote_module._digest(payload)
        ) + payload
        a.sendall(frame[:-3])  # drop the frame's last bytes
        a.close()
        with pytest.raises(TransportError, match="mid-frame"):
            recv_message(b, eof_ok=True)  # eof_ok covers *between* frames only

    def test_foreign_magic_raises(self, pair):
        a, b = pair
        a.sendall(b"HTTP" + b"\x00" * 20)
        with pytest.raises(TransportError, match="foreign frame magic"):
            recv_message(b)

    def test_oversized_length_raises(self, pair):
        a, b = pair
        a.sendall(
            remote_module._HEADER.pack(
                MAGIC, remote_module.MAX_FRAME + 1, b"\x00" * 16
            )
        )
        with pytest.raises(TransportError, match="MAX_FRAME"):
            recv_message(b)

    def test_tampered_payload_raises(self, pair):
        a, b = pair
        payload = pickle.dumps({"op": "result", "pairs": []})
        frame = remote_module._HEADER.pack(
            MAGIC, len(payload), remote_module._digest(payload)
        ) + payload
        tampered = bytearray(frame)
        tampered[-1] ^= 0xFF  # one flipped payload byte
        a.sendall(bytes(tampered))
        with pytest.raises(TransportError, match="does not hash"):
            recv_message(b)

    def test_parse_address(self):
        assert parse_address("127.0.0.1:9000") == ("127.0.0.1", 9000)
        assert parse_address(("localhost", "8080")) == ("localhost", 8080)
        with pytest.raises(TransportError, match="host:port"):
            parse_address("9000")
        with pytest.raises(TransportError, match="non-numeric"):
            parse_address("host:http")

    def test_parse_address_tuple_errors(self):
        """Tuple-form addresses fail as loudly as string-form ones."""
        with pytest.raises(TransportError, match="non-numeric"):
            parse_address(("localhost", "http"))
        with pytest.raises(TransportError, match="non-numeric"):
            parse_address(("localhost", None))
        with pytest.raises(TransportError, match=r"\(host, port\) pair"):
            parse_address(("localhost", 1, 2))
        with pytest.raises(TransportError, match=r"\(host, port\) pair"):
            parse_address(("localhost",))

    def test_valid_digest_garbage_payload_raises(self, pair):
        """Payload bytes that hash correctly but do not decode.

        The digest proves transit integrity, not well-formedness: a
        peer that frames garbage correctly must still be refused at the
        protocol layer, not crash the receiver with a decode error.
        """
        a, b = pair
        payload = b"these bytes are not a pickled message"
        a.sendall(
            remote_module._HEADER.pack(
                MAGIC, len(payload), remote_module._digest(payload)
            )
            + payload
        )
        with pytest.raises(TransportError, match="not a valid message"):
            recv_message(b)


def _frame(message: object) -> bytes:
    """The exact frame bytes :func:`send_message` would put on the wire."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    return (
        remote_module._HEADER.pack(
            MAGIC, len(payload), remote_module._digest(payload)
        )
        + payload
    )


class TestFrameEdges:
    """The frame-size and protocol-skew edges of the wire format."""

    def test_send_refuses_oversize_frame(self, pair, monkeypatch):
        """An oversize payload is refused before a byte hits the wire."""
        a, _b = pair
        monkeypatch.setattr(remote_module, "MAX_FRAME", 64)
        with pytest.raises(TransportError, match="refusing to send"):
            send_message(a, {"op": "install", "blob": b"x" * 256})

    def test_worker_closes_on_announced_oversize(self):
        """A header announcing > MAX_FRAME: the worker drops the stream.

        No error reply — a peer announcing a gigabyte-plus frame is a
        desynchronised or hostile stream, and nothing later on it can
        be trusted; the connection closes and the client observes EOF.
        """
        worker = WorkerServer().start()
        try:
            sock = socket.create_connection(worker.address, timeout=5)
            sock.sendall(
                remote_module._HEADER.pack(
                    MAGIC, remote_module.MAX_FRAME + 1, b"\x00" * 16
                )
            )
            with pytest.raises(TransportError, match="closed"):
                recv_message(sock)
            sock.close()
        finally:
            worker.stop()
        assert worker.stats.units == 0

    def test_hello_version_skew_refused(self, small_workload, queries):
        """A relay rewriting hello to a future protocol version.

        :func:`helpers.faults.rewrite_frame` substitutes a complete,
        correctly digest-framed hello — so the fault passes the framing
        layer and must be refused by the worker's *protocol* logic.
        The worker never installs state and never runs a unit.
        """
        worker = WorkerServer().start()
        skew = rewrite_frame(
            _frame({"op": "hello", "version": PROTOCOL_VERSION}),
            _frame({"op": "hello", "version": 999}),
        )
        with TamperProxy(worker.address, upstream=skew) as proxy:
            try:
                executor = RemoteShardExecutor([proxy.address])
                with pytest.raises(TransportError, match="version mismatch"):
                    _remote_answers(small_workload, queries, executor)
            finally:
                worker.stop()
        assert worker.stats.installs == 0
        assert worker.stats.units == 0


# ---------------------------------------------------------------------------
# Byte-identity over live workers
# ---------------------------------------------------------------------------

class TestRemoteByteIdentity:
    @pytest.mark.parametrize(
        "name,params",
        [("exhaustive", {}), ("clustering", {"clusters_per_element": 2})],
    )
    def test_inline_matches_serial(self, small_workload, queries, name, params):
        workers = [WorkerServer().start() for _ in range(2)]
        try:
            executor = RemoteShardExecutor([w.address for w in workers])
            remote = _remote_answers(
                small_workload, queries, executor, name, params
            )
        finally:
            for worker in workers:
                worker.stop()
        serial = _serial_answers(small_workload, queries, name, params)
        assert _canonical(remote) == _canonical(serial)
        assert sum(w.stats.units for w in workers) == len(queries) * 3

    def test_store_mode_matches_serial(self, small_workload, queries, tmp_path):
        worker = WorkerServer().start()
        try:
            executor = RemoteShardExecutor(
                [worker.address], store=tmp_path / "snap"
            )
            remote = _remote_answers(small_workload, queries, executor)
        finally:
            worker.stop()
        assert _canonical(remote) == _canonical(
            _serial_answers(small_workload, queries)
        )
        # The worker pulled state from the store the coordinator wrote.
        assert (tmp_path / "snap").exists()
        assert worker.stats.installs == 1

    def test_state_reused_across_sweeps(self, small_workload, queries):
        worker = WorkerServer().start()
        try:
            executor = RemoteShardExecutor([worker.address])
            first = _remote_answers(small_workload, queries, executor)
            second = _remote_answers(small_workload, queries, executor)
        finally:
            worker.stop()
        assert _canonical(first) == _canonical(second)
        assert worker.stats.installs == 1
        assert worker.stats.installs_reused >= 1


# ---------------------------------------------------------------------------
# Fault injection
# ---------------------------------------------------------------------------

class _CrashingWorker(WorkerServer):
    """Dies abruptly — listener and every connection — on its first unit.

    The coordinator sent the unit and will never hear back: the
    connection drops mid-conversation, exactly like ``kill -9`` on a
    remote worker process between request and reply.
    """

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.crashed = False

    def _run(self, message):
        self.crashed = True
        self._stopping.set()
        self._close_listener()
        with self._lock:
            connections = list(self._connections)
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            conn.close()
        raise TransportError("injected crash mid-shard")


class _SlowFirstUnitWorker(WorkerServer):
    """Stalls its first unit so a peer is guaranteed to pick one up too."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self._stalled = False

    def _run(self, message):
        if not self._stalled:
            self._stalled = True
            time.sleep(0.3)
        return super()._run(message)


class TestFaultInjection:
    def test_worker_crash_mid_shard_is_retried(self, small_workload, queries):
        """The headline scenario: crash mid-shard, identical answers."""
        crasher = _CrashingWorker().start()
        healthy = _SlowFirstUnitWorker().start()
        try:
            executor = RemoteShardExecutor([crasher.address, healthy.address])
            remote = _remote_answers(small_workload, queries, executor)
        finally:
            crasher.stop()
            healthy.stop()
        assert crasher.crashed, "the fault never fired"
        # Every unit — including the one the crasher dropped — completed
        # on the healthy worker, and the answers are byte-identical.
        assert healthy.stats.units == len(queries) * 3
        assert _canonical(remote) == _canonical(
            _serial_answers(small_workload, queries)
        )

    def test_all_workers_gone_raises(self, small_workload, queries):
        crasher = _CrashingWorker().start()
        try:
            executor = RemoteShardExecutor([crasher.address])
            with pytest.raises(TransportError, match="remote workers are gone"):
                _remote_answers(small_workload, queries, executor)
        finally:
            crasher.stop()

    def test_tampered_stream_raises(self, small_workload, queries):
        """A flipped byte inside a reply frame: loud TransportError."""
        worker = WorkerServer().start()
        # Offset 30 lands inside the first reply's payload (24-byte
        # header + pickled {"op": "ready", ...}).
        with TamperProxy(worker.address, downstream=flip_byte(30)) as proxy:
            try:
                executor = RemoteShardExecutor([proxy.address])
                with pytest.raises(TransportError):
                    _remote_answers(small_workload, queries, executor)
            finally:
                worker.stop()

    def test_truncated_stream_raises(self, small_workload, queries):
        """A connection cut mid-header: loud TransportError."""
        worker = WorkerServer().start()
        with TamperProxy(worker.address, downstream=cut_after(10)) as proxy:
            try:
                executor = RemoteShardExecutor([proxy.address])
                with pytest.raises(TransportError):
                    _remote_answers(small_workload, queries, executor)
            finally:
                worker.stop()

    def test_upstream_tamper_never_executes(self, small_workload, queries):
        """Damage on the coordinator→worker leg: the worker refuses too."""
        worker = WorkerServer().start()
        with TamperProxy(worker.address, upstream=flip_byte(40)) as proxy:
            try:
                executor = RemoteShardExecutor([proxy.address])
                with pytest.raises(TransportError):
                    _remote_answers(small_workload, queries, executor)
            finally:
                worker.stop()
        assert worker.stats.units == 0


class TestVersionAndState:
    def test_version_mismatch_refused(self):
        worker = WorkerServer().start()
        try:
            sock = socket.create_connection(worker.address, timeout=5)
            send_message(sock, {"op": "hello", "version": 999})
            reply = recv_message(sock)
            sock.close()
        finally:
            worker.stop()
        assert reply["op"] == "error"
        assert "version mismatch" in reply["error"]

    def test_run_without_install_refused(self):
        worker = WorkerServer().start()
        try:
            sock = socket.create_connection(worker.address, timeout=5)
            send_message(sock, {
                "op": "run",
                "state_key": ("nope",),
                "query_index": 0,
                "schema_ids": (),
                "delta_max": 0.3,
            })
            reply = recv_message(sock)
            sock.close()
        finally:
            worker.stop()
        assert reply["op"] == "error"
        assert "no state installed" in reply["error"]

    def test_parallel_units_must_be_positive(self):
        with pytest.raises(TransportError, match="parallel_units"):
            WorkerServer(parallel_units=0)


# ---------------------------------------------------------------------------
# Coordinator shutdown hygiene
# ---------------------------------------------------------------------------

def _fanout_threads() -> list[threading.Thread]:
    return [
        thread
        for thread in threading.enumerate()
        if thread.name.startswith("repro-remote")
    ]


def _no_fanout_threads(timeout: float = 5.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if not _fanout_threads():
            return True
        time.sleep(0.05)
    return False


def _execution_state(small_workload, queries, matcher):
    switches = current_switches()
    return ExecutionState(
        matcher=matcher,
        queries=queries,
        repository=small_workload.repository,
        schema_table={
            schema.schema_id: schema for schema in small_workload.repository
        },
        switches=switches,
        state_key=(
            matcher_fingerprint(matcher),
            small_workload.repository.content_digest(),
            tuple(schema_digest(query) for query in queries),
            *switches,
        ),
    )


class TestCoordinatorShutdown:
    """``execute`` leaves nothing behind, however the sweep ends."""

    def test_no_leaked_threads_after_worker_death(
        self, small_workload, queries
    ):
        """Every worker dying mid-sweep: the fan-out thread still exits."""
        crasher = _CrashingWorker().start()
        try:
            executor = RemoteShardExecutor([crasher.address])
            with pytest.raises(TransportError):
                _remote_answers(small_workload, queries, executor)
        finally:
            crasher.stop()
        assert _no_fanout_threads(), (
            "fan-out thread leaked after a failed sweep: "
            f"{_fanout_threads()}"
        )

    def test_no_leaked_threads_after_abandoned_stream(
        self, small_workload, queries
    ):
        """A consumer walking away mid-stream: the fan-out loop bails.

        The pipeline consumes ``execute`` generators to completion, but
        the generator protocol allows any consumer to ``close()`` early
        — and an abandoned sweep must not keep a live event loop
        talking to workers behind the caller's back.
        """
        worker = _SlowFirstUnitWorker().start()
        try:
            matcher = make_matcher("exhaustive", small_workload.objective)
            matcher.prepare(small_workload.repository)
            state = _execution_state(small_workload, queries, matcher)
            schema_ids = tuple(
                schema.schema_id for schema in small_workload.repository
            )
            units = [
                WorkUnit(index, 0, schema_ids)
                for index in range(len(queries))
            ]
            executor = RemoteShardExecutor([worker.address])
            stream = executor.execute(state, units, 0.3)
            next(stream)  # first unit completes, the rest never asked for
            stream.close()
        finally:
            worker.stop()
        assert _no_fanout_threads(), (
            "fan-out thread leaked after an abandoned sweep: "
            f"{_fanout_threads()}"
        )


# ---------------------------------------------------------------------------
# Worker-side parallelism
# ---------------------------------------------------------------------------

class TestParallelUnits:
    def test_concurrent_coordinators_byte_identical(
        self, small_workload, queries
    ):
        """Two coordinators race one ``parallel_units=2`` worker.

        Both sweeps must come back byte-identical to the serial path
        (whichever state slot each unit lands on), the state installs
        exactly once (the coordinators share a ``state_key``), and
        every unit of both sweeps executes.
        """
        worker = WorkerServer(parallel_units=2).start()
        results: dict[int, bytes] = {}
        errors: list[BaseException] = []

        def sweep(label: int) -> None:
            try:
                # a private objective per coordinator: similarity
                # substrates are not shared safely across concurrently
                # executing matchers
                objective = pickle.loads(
                    pickle.dumps(small_workload.objective)
                )
                matcher = make_matcher("exhaustive", objective)
                executor = RemoteShardExecutor([worker.address])
                results[label] = _canonical(matcher.batch_match(
                    queries,
                    small_workload.repository,
                    0.3,
                    cache=False,
                    shards=3,
                    executor=executor,
                ))
            except BaseException as exc:  # noqa: BLE001 - reraised below
                errors.append(exc)

        threads = [
            threading.Thread(target=sweep, args=(label,)) for label in (0, 1)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        worker.stop()
        assert not errors, errors
        serial = _canonical(_serial_answers(small_workload, queries))
        assert results[0] == serial
        assert results[1] == serial
        assert worker.stats.units == len(queries) * 3 * 2
        assert worker.stats.installs == 1
        assert worker.stats.installs_reused >= 1


# ---------------------------------------------------------------------------
# Deadlines: hung peers are crashes, not hangs
# ---------------------------------------------------------------------------

def _dead_address() -> tuple[str, int]:
    """An address nothing listens on (a just-released ephemeral port)."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.bind(("127.0.0.1", 0))
    address = sock.getsockname()[:2]
    sock.close()
    return address


class TestDeadlines:
    def test_budget_validation(self):
        with pytest.raises(TransportError, match="must be positive"):
            DeadlineBudget(run=0)
        with pytest.raises(TransportError, match="must be positive"):
            DeadlineBudget(hello=-1.0)

    def test_op_timeout_validation(self):
        with pytest.raises(TransportError, match="op_timeout"):
            WorkerServer(op_timeout=0)

    def test_stalled_worker_deadline_expires(self, small_workload, queries):
        """A hung (not crashed) worker: silence, no EOF, no reset.

        Without deadlines the coordinator coroutine would block forever
        — the liveness hole this layer closes.  The hello deadline
        converts the stall into a loud failure, the worker's breaker
        opens, and the sweep fails like an ordinary all-workers-gone.
        """
        worker = WorkerServer().start()
        with TamperProxy(worker.address, stall_after=0) as proxy:
            executor = RemoteShardExecutor(
                [proxy.address],
                deadlines=DeadlineBudget(
                    connect=5.0, hello=0.3, install=30.0, run=30.0
                ),
            )
            with pytest.raises(
                TransportError, match="remote workers are gone"
            ):
                _remote_answers(small_workload, queries, executor)
        worker.stop()
        assert executor.stats.deadline_expiries >= 1
        assert executor.worker_health(proxy.address).state == "open"
        assert worker.stats.units == 0

    def test_deadline_unit_retried_on_healthy_peer(
        self, small_workload, queries
    ):
        """A stalled worker's units complete elsewhere, byte-identical.

        The re-enqueue contract: an expired deadline is handled exactly
        like a crash, so the healthy peer absorbs the whole sweep.
        """
        hung = WorkerServer().start()
        # slow first unit: the sweep outlives the hello deadline, so the
        # stalled peer demonstrably *expires* rather than being
        # cancelled as a straggler when the sweep drains without it
        healthy = _SlowFirstUnitWorker().start()
        with TamperProxy(hung.address, stall_after=0) as proxy:
            executor = RemoteShardExecutor(
                [proxy.address, healthy.address],
                deadlines=DeadlineBudget(
                    connect=5.0, hello=0.05, install=60.0, run=60.0
                ),
            )
            remote = _remote_answers(small_workload, queries, executor)
        hung.stop()
        healthy.stop()
        assert executor.stats.deadline_expiries >= 1
        assert healthy.stats.units == len(queries) * 3
        assert _canonical(remote) == _canonical(
            _serial_answers(small_workload, queries)
        )


class TestHungPeerServer:
    """op_timeout: the worker side of the liveness story."""

    def test_hung_peer_cannot_block_stop(self):
        """Half a frame, then silence: stop() must still return.

        Without the mid-frame timeout the connection thread sits in
        ``recv`` forever and ``stop()`` hangs on the join — the exact
        regression this guards.
        """
        worker = WorkerServer(op_timeout=0.2).start()
        sock = socket.create_connection(worker.address, timeout=5)
        sock.sendall(MAGIC)  # a frame has started; the rest never comes
        time.sleep(0.05)
        started = time.monotonic()
        worker.stop()
        elapsed = time.monotonic() - started
        sock.close()
        assert elapsed < 3.0, f"stop() took {elapsed:.1f}s with a hung peer"

    def test_op_timeout_drops_hung_peer(self):
        """The worker itself drops a peer that stalls mid-frame."""
        worker = WorkerServer(op_timeout=0.2).start()
        try:
            sock = socket.create_connection(worker.address, timeout=5)
            sock.sendall(MAGIC + b"\x00")  # mid-frame, then silence
            sock.settimeout(5)
            try:
                while sock.recv(4096):
                    pass  # reaching EOF here proves the worker dropped us
            except ConnectionError:
                pass  # a reset is an equally loud drop
            sock.close()
        finally:
            worker.stop()

    def test_idle_peer_is_not_dropped(self):
        """The timeout is mid-frame only: idle between frames is healthy."""
        worker = WorkerServer(op_timeout=0.2).start()
        try:
            sock = socket.create_connection(worker.address, timeout=5)
            time.sleep(0.4)  # idle well past op_timeout, no frame started
            send_message(sock, {"op": "hello", "version": PROTOCOL_VERSION})
            reply = recv_message(sock)
            sock.close()
        finally:
            worker.stop()
        assert reply["op"] == "ready"


# ---------------------------------------------------------------------------
# Worker health: circuit breakers on the coordinator
# ---------------------------------------------------------------------------

class TestCircuitBreaker:
    def test_breaker_param_validation(self):
        with pytest.raises(TransportError, match="breaker_backoff"):
            RemoteShardExecutor(["h:1"], breaker_backoff=0)
        with pytest.raises(TransportError, match="breaker_backoff_cap"):
            RemoteShardExecutor(
                ["h:1"], breaker_backoff=2.0, breaker_backoff_cap=1.0
            )
        with pytest.raises(TransportError, match="breaker_jitter"):
            RemoteShardExecutor(["h:1"], breaker_jitter=-0.1)

    def test_dead_address_not_redialed(self, small_workload, queries):
        """The satellite regression: one dial, then the breaker skips.

        Before the breaker, ``execute`` re-dialed a known-dead address
        on every sweep; now the first failure opens the breaker and the
        second sweep never touches the address (``dials`` stays 1).
        """
        dead = _dead_address()
        worker = WorkerServer().start()
        try:
            executor = RemoteShardExecutor(
                [dead, worker.address], breaker_backoff=60.0, breaker_backoff_cap=60.0
            )
            first = _remote_answers(small_workload, queries, executor)
            second = _remote_answers(small_workload, queries, executor)
        finally:
            worker.stop()
        serial = _canonical(_serial_answers(small_workload, queries))
        assert _canonical(first) == serial
        assert _canonical(second) == serial
        health = executor.worker_health(dead)
        assert health.state == "open"
        assert health.dials == 1
        assert executor.stats.breaker_skips >= 1
        assert executor.worker_health(worker.address).state == "closed"

    def test_all_breakers_open_refuses(self, small_workload, queries):
        """Every address cooling down: the sweep refuses loudly."""
        dead = _dead_address()
        executor = RemoteShardExecutor(
            [dead], breaker_backoff=60.0, breaker_backoff_cap=60.0
        )
        with pytest.raises(TransportError, match="remote workers are gone"):
            _remote_answers(small_workload, queries, executor)
        with pytest.raises(TransportError, match="breaker"):
            _remote_answers(small_workload, queries, executor)
        assert executor.stats.all_open_refusals == 1

    def test_half_open_probe_readmits_and_closes(
        self, small_workload, queries
    ):
        """A worker that comes back: cooldown, half-open probe, closed."""
        worker = WorkerServer().start()
        address = worker.address
        executor = RemoteShardExecutor(
            [address],
            breaker_backoff=0.05,
            breaker_backoff_cap=0.1,
            breaker_jitter=0.0,
        )
        worker.stop()
        with pytest.raises(TransportError, match="remote workers are gone"):
            _remote_answers(small_workload, queries, executor)
        assert executor.worker_health(address).state == "open"
        revived = WorkerServer(address[0], address[1]).start()
        try:
            time.sleep(0.15)  # past the cooldown: the next sweep probes
            remote = _remote_answers(small_workload, queries, executor)
        finally:
            revived.stop()
        assert executor.stats.half_open_probes >= 1
        assert executor.stats.breaker_closes >= 1
        assert executor.worker_health(address).state == "closed"
        assert _canonical(remote) == _canonical(
            _serial_answers(small_workload, queries)
        )

    def test_probe_closes_breaker_without_cooldown(self):
        """probe(): the operator's explicit health check."""
        dead = _dead_address()
        executor = RemoteShardExecutor(
            [dead], breaker_backoff=3600.0, breaker_backoff_cap=3600.0
        )
        assert executor.probe(dead) is False
        assert executor.worker_health(dead).state == "open"
        revived = WorkerServer(dead[0], dead[1]).start()
        try:
            assert executor.probe(dead) is True
        finally:
            revived.stop()
        # no cooldown wait: the successful probe closed the breaker
        assert executor.worker_health(dead).state == "closed"
        assert executor.stats.probes == 2
        assert executor.stats.breaker_closes == 1

    def test_status_line(self):
        dead = _dead_address()
        executor = RemoteShardExecutor(
            [dead], breaker_backoff=3600.0, breaker_backoff_cap=3600.0
        )
        assert executor.probe(dead) is False
        line = executor.status()
        assert line.startswith("executor remote:")
        assert f"{dead[0]}:{dead[1]}=open" in line
        assert "breaker opens" in line

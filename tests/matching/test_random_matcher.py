"""Unit tests for random/adversarial subset systems (section 3.4)."""

import pytest

from repro.core.answers import AnswerSet
from repro.core.thresholds import ThresholdSchedule
from repro.errors import BoundsError
from repro.matching.random_matcher import (
    best_case_subset,
    random_subset_like,
    worst_case_subset,
)


@pytest.fixture()
def answers():
    # 10 answers, scores 0.05..0.5; "g*" items form the ground truth
    pairs = []
    for i in range(10):
        name = f"g{i}" if i % 2 == 0 else f"b{i}"
        pairs.append((name, 0.05 * (i + 1)))
    return AnswerSet.from_pairs(pairs)


@pytest.fixture()
def schedule():
    return ThresholdSchedule([0.25, 0.5])


GROUND_TRUTH = frozenset({f"g{i}" for i in range(0, 10, 2)})


class TestRandomSubset:
    def test_sizes_match_targets(self, answers, schedule):
        subset = random_subset_like(answers, schedule, [3, 7], seed=1)
        assert subset.size_at(0.25) == 3
        assert subset.size_at(0.5) == 7

    def test_subset_of_original(self, answers, schedule):
        subset = random_subset_like(answers, schedule, [3, 7], seed=2)
        assert subset.is_subset_of(answers)

    def test_deterministic_per_seed(self, answers, schedule):
        a = random_subset_like(answers, schedule, [3, 7], seed=3)
        b = random_subset_like(answers, schedule, [3, 7], seed=3)
        assert a.items() == b.items()

    def test_different_seeds_vary(self, answers, schedule):
        draws = {
            random_subset_like(answers, schedule, [2, 5], seed=s).items()
            for s in range(8)
        }
        assert len(draws) > 1

    def test_decreasing_targets_rejected(self, answers, schedule):
        with pytest.raises(BoundsError, match="non-decreasing"):
            random_subset_like(answers, schedule, [5, 3], seed=1)

    def test_oversized_targets_rejected(self, answers, schedule):
        with pytest.raises(BoundsError, match="cannot keep"):
            random_subset_like(answers, schedule, [6, 7], seed=1)

    def test_target_alignment_enforced(self, answers, schedule):
        with pytest.raises(Exception):
            random_subset_like(answers, schedule, [3], seed=1)


class TestAdversarialSubsets:
    def test_worst_case_drops_correct_first(self, answers, schedule):
        subset = worst_case_subset(answers, schedule, [2, 5], GROUND_TRUTH)
        # first increment has 5 answers (3 correct g1/g3/g5 ... wait: g0,b1,g2,b3,g4)
        first = subset.at_threshold(0.25)
        correct_kept = sum(1 for a in first if a.item in GROUND_TRUTH)
        # worst case formula: max(0, 2 - (5 - 3)) = 0
        assert correct_kept == 0

    def test_best_case_keeps_correct_first(self, answers, schedule):
        subset = best_case_subset(answers, schedule, [2, 5], GROUND_TRUTH)
        first = subset.at_threshold(0.25)
        correct_kept = sum(1 for a in first if a.item in GROUND_TRUTH)
        # best case: min(3 correct, 2 kept) = 2
        assert correct_kept == 2

    def test_adversarial_subsets_attain_the_bounds(self, answers, schedule):
        """worst/best subsets realise Equations 1 and 4 exactly."""
        from repro.core.incremental import (
            SizeProfile,
            SystemProfile,
            compute_incremental_bounds,
        )

        targets = [3, 7]
        original = SystemProfile.from_answer_set(schedule, answers, GROUND_TRUTH)
        sizes = SizeProfile(schedule, tuple(targets))
        bounds = compute_incremental_bounds(original, sizes)

        worst = worst_case_subset(answers, schedule, targets, GROUND_TRUTH)
        best = best_case_subset(answers, schedule, targets, GROUND_TRUTH)
        worst_profile = SystemProfile.from_answer_set(
            schedule, worst, GROUND_TRUTH
        )
        best_profile = SystemProfile.from_answer_set(schedule, best, GROUND_TRUTH)
        for entry, worst_counts, best_counts in zip(
            bounds, worst_profile.counts, best_profile.counts
        ):
            assert worst_counts.correct == entry.worst.correct
            assert best_counts.correct == entry.best.correct

    def test_sizes_respected(self, answers, schedule):
        for fn in (worst_case_subset, best_case_subset):
            subset = fn(answers, schedule, [4, 6], GROUND_TRUTH)
            assert subset.size_at(0.25) == 4
            assert subset.size_at(0.5) == 6

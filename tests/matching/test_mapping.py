"""Unit tests for mappings (search-space elements)."""

import pytest

from repro.errors import MatchingError
from repro.matching.mapping import Mapping
from repro.schema.model import Schema, SchemaElement
from repro.schema.repository import SchemaRepository


def repo() -> SchemaRepository:
    def build(schema_id):
        root = SchemaElement("root")
        root.add_child(SchemaElement("a"))
        root.add_child(SchemaElement("b"))
        return Schema(schema_id, root)

    return SchemaRepository("r", [build("s1"), build("s2")])


def query() -> Schema:
    root = SchemaElement("q")
    root.add_child(SchemaElement("x"))
    return Schema("query", root)


class TestMappingValidation:
    def test_requires_targets(self):
        with pytest.raises(MatchingError, match="at least one"):
            Mapping("q", ())

    def test_single_schema_enforced(self):
        repository = repo()
        targets = (repository.handle("s1", 0), repository.handle("s2", 1))
        with pytest.raises(MatchingError, match="spans repository schemas"):
            Mapping("q", targets)

    def test_injectivity_enforced(self):
        repository = repo()
        targets = (repository.handle("s1", 1), repository.handle("s1", 1))
        with pytest.raises(MatchingError, match="same target"):
            Mapping("q", targets)

    def test_valid_mapping(self):
        repository = repo()
        mapping = Mapping(
            "q", (repository.handle("s1", 0), repository.handle("s1", 2))
        )
        assert mapping.target_ids == (0, 2)
        assert mapping.target_schema.schema_id == "s1"


class TestMappingIdentity:
    def test_equality_by_key(self):
        repository = repo()
        a = Mapping("q", (repository.handle("s1", 0), repository.handle("s1", 1)))
        b = Mapping("q", (repository.handle("s1", 0), repository.handle("s1", 1)))
        assert a == b
        assert hash(a) == hash(b)

    def test_order_matters(self):
        repository = repo()
        a = Mapping("q", (repository.handle("s1", 0), repository.handle("s1", 1)))
        b = Mapping("q", (repository.handle("s1", 1), repository.handle("s1", 0)))
        assert a != b

    def test_query_id_in_identity(self):
        repository = repo()
        a = Mapping("q1", (repository.handle("s1", 0),))
        b = Mapping("q2", (repository.handle("s1", 0),))
        assert a != b

    def test_not_equal_other_types(self):
        repository = repo()
        assert Mapping("q", (repository.handle("s1", 0),)) != "something"


class TestDescribe:
    def test_describe_lists_pairs(self):
        repository = repo()
        q = query()
        mapping = Mapping(
            "query", (repository.handle("s1", 0), repository.handle("s1", 1))
        )
        text = mapping.describe(q)
        assert "q  ->  s1:root" in text
        assert "q/x  ->  s1:root/a" in text

    def test_describe_checks_query_id(self):
        repository = repo()
        mapping = Mapping("other", (repository.handle("s1", 0),))
        with pytest.raises(MatchingError, match="belongs to query"):
            mapping.describe(query())

    def test_describe_checks_arity(self):
        repository = repo()
        mapping = Mapping("query", (repository.handle("s1", 0),))
        with pytest.raises(MatchingError, match="targets but the query"):
            mapping.describe(query())

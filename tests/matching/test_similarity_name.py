"""Unit tests for name similarity and the imperfect thesaurus."""

import pytest

from repro.errors import MatchingError
from repro.matching.similarity.name import NameSimilarity, Thesaurus
from repro.schema.vocabulary import builtin_domains, get_domain


class TestThesaurus:
    def test_symmetric(self):
        thesaurus = Thesaurus([("author", "writer")])
        assert thesaurus.synonymous("author", "writer")
        assert thesaurus.synonymous("writer", "author")

    def test_normalised_lookup(self):
        thesaurus = Thesaurus([("lastName", "surname")])
        assert thesaurus.synonymous("last_name", "SURNAME")

    def test_identity_not_synonymy(self):
        thesaurus = Thesaurus([("a b", "a-b")])  # same after normalisation
        assert len(thesaurus) == 0
        assert not thesaurus.synonymous("author", "author")

    def test_unknown_pair(self):
        thesaurus = Thesaurus([("author", "writer")])
        assert not thesaurus.synonymous("author", "price")

    def test_from_vocabularies_coverage_zero(self):
        thesaurus = Thesaurus.from_vocabularies(
            [get_domain("bibliography")], coverage=0.0, spurious_rate=0.0
        )
        assert len(thesaurus) == 0

    def test_from_vocabularies_full_coverage(self):
        thesaurus = Thesaurus.from_vocabularies(
            [get_domain("bibliography")], coverage=1.0, spurious_rate=0.0
        )
        assert thesaurus.synonymous("author", "writer")
        assert thesaurus.synonymous("author", "creator")

    def test_deterministic_per_seed(self):
        kwargs = dict(coverage=0.5, spurious_rate=0.05, seed=9)
        a = Thesaurus.from_vocabularies(builtin_domains().values(), **kwargs)
        b = Thesaurus.from_vocabularies(builtin_domains().values(), **kwargs)
        assert a._pairs == b._pairs

    def test_spurious_pairs_cross_concepts(self):
        thesaurus = Thesaurus.from_vocabularies(
            [get_domain("bibliography")], coverage=0.0, spurious_rate=0.1, seed=4
        )
        assert len(thesaurus) > 0  # only spurious entries exist

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            Thesaurus.from_vocabularies([get_domain("medical")], coverage=1.5)


class TestNameSimilarity:
    def test_identical_names(self):
        assert NameSimilarity().similarity("author", "author") == 1.0

    def test_style_variants_are_identical(self):
        sim = NameSimilarity()
        assert sim.similarity("lastName", "last_name") == 1.0
        assert sim.similarity("LAST_NAME", "last-name") == 1.0

    def test_range(self):
        sim = NameSimilarity()
        for a, b in [("price", "cost"), ("author", "wrt"), ("a", "zzz")]:
            assert 0.0 <= sim.similarity(a, b) <= 1.0

    def test_unrelated_names_rank_low(self):
        sim = NameSimilarity()
        related = sim.similarity("authors", "author")
        unrelated = sim.similarity("dosage", "publisher")
        assert related > unrelated

    def test_ramp_zeroes_weak_similarity(self):
        no_ramp = NameSimilarity(ramp_low=0.0)
        ramped = NameSimilarity(ramp_low=0.35)
        weak = no_ramp.similarity("price", "name")
        assert 0 < weak < 0.6
        assert ramped.similarity("price", "name") < weak

    def test_thesaurus_hit_scores_high(self):
        thesaurus = Thesaurus([("author", "writer")])
        sim = NameSimilarity(thesaurus)
        assert sim.similarity("author", "writer") == pytest.approx(0.95)

    def test_thesaurus_hit_through_styles(self):
        thesaurus = Thesaurus([("first name", "forename")])
        sim = NameSimilarity(thesaurus)
        assert sim.similarity("firstName", "forename") == pytest.approx(0.95)

    def test_memoisation_symmetric(self):
        sim = NameSimilarity()
        first = sim.similarity("price", "cost")
        assert sim.similarity("cost", "price") == first
        assert len(sim._memo) == 1

    def test_empty_label(self):
        assert NameSimilarity().similarity("", "author") == 0.0

    def test_weights_normalised(self):
        sim = NameSimilarity(jaro_weight=2, ngram_weight=1, token_weight=1)
        assert sim.jaro_weight == pytest.approx(0.5)

    def test_zero_weights_rejected(self):
        with pytest.raises(MatchingError):
            NameSimilarity(jaro_weight=0, ngram_weight=0, token_weight=0)

    def test_invalid_ramp_rejected(self):
        with pytest.raises(MatchingError):
            NameSimilarity(ramp_low=1.0)

    def test_fingerprint_reflects_configuration(self):
        a = NameSimilarity()
        b = NameSimilarity(ramp_low=0.2)
        assert a.fingerprint() != b.fingerprint()

    def test_fingerprint_includes_thesaurus_size_and_content(self):
        thesaurus = Thesaurus([("a1", "b1"), ("c1", "d1")])
        fingerprint = NameSimilarity(thesaurus).fingerprint()
        assert f"thesaurus[2:{thesaurus.digest()}]" in fingerprint

    def test_fingerprint_separates_same_size_thesauri(self):
        # same size, different content: the digest must keep them apart
        a = Thesaurus([("a1", "b1"), ("c1", "d1")])
        b = Thesaurus([("a1", "b1"), ("c1", "e1")])
        assert len(a) == len(b)
        assert NameSimilarity(a).fingerprint() != NameSimilarity(b).fingerprint()

"""Unit tests of the repository scoring kernel (and its satellites).

The kernel's contract is the substrate's, taken one level up: each
distinct (normalised label, datatype) cost is computed once per
*repository*, matrices gather from interned rows with bit-identical
floats and candidate orders, rows migrate exactly across repository
deltas and snapshot restores, and the whole thing switches off cleanly
to the PR-4 path.  Answer-set identity under the kernel is covered by
``tests/properties/test_prop_kernel.py``.
"""

import json

import pytest

from repro.errors import MatchingError, SnapshotError
from repro.matching import ExhaustiveMatcher, HybridMatcher
from repro.matching.clustering import ClusteringMatcher, ElementClusterer
from repro.matching.objective import ObjectiveFunction
from repro.matching.similarity.kernel import (
    CostKernel,
    kernel_disabled,
    kernel_enabled,
    set_kernel_enabled,
)
from repro.matching.similarity.matrix import ScoreMatrix
from repro.matching.similarity.name import NameSimilarity, Thesaurus
from repro.schema import churn_delta
from repro.schema.generator import GeneratorConfig, generate_repository
from repro.schema.model import Datatype, Schema, SchemaElement
from repro.schema.mutations import extract_personal_schema
from repro.schema.repository import SchemaRepository
from repro.schema.vocabulary import builtin_domains
from repro.util import rng


@pytest.fixture(scope="module")
def setup():
    repo = generate_repository(
        GeneratorConfig(num_schemas=6, min_size=6, max_size=11, seed=31)
    )
    thesaurus = Thesaurus.from_vocabularies(
        builtin_domains().values(), coverage=0.7, seed=5
    )
    objective = ObjectiveFunction(NameSimilarity(thesaurus))
    query = extract_personal_schema(
        rng.make_tagged(55),
        repo.schemas()[1],
        None,
        target_size=4,
        schema_id="kernel-query",
    )
    return repo, objective, query


def _handmade_repository():
    root = SchemaElement("order", Datatype.COMPLEX)
    root.add_child(SchemaElement("orderNumber", Datatype.IDENTIFIER))
    root.add_child(SchemaElement("Order_Number", Datatype.IDENTIFIER))
    root.add_child(SchemaElement("shipDate", Datatype.DATE))
    other = SchemaElement("customer", Datatype.COMPLEX)
    other.add_child(SchemaElement("order number", Datatype.IDENTIFIER))
    other.add_child(SchemaElement("customerName", Datatype.STRING))
    return SchemaRepository(
        "handmade", [Schema("orders", root), Schema("customers", other)]
    )


class TestCostKernel:
    def test_universe_interns_normalised_labels(self):
        repo = _handmade_repository()
        kernel = CostKernel(ObjectiveFunction(NameSimilarity()), repo)
        # "orderNumber", "Order_Number" and "order number" all intern to
        # one ("order number", IDENTIFIER) entry
        assert kernel.distinct_labels == 5
        lids_orders = kernel.schema_label_ids(repo.schemas()[0])
        lids_customers = kernel.schema_label_ids(repo.schemas()[1])
        assert lids_orders[1] == lids_orders[2] == lids_customers[1]

    def test_each_distinct_cost_computed_once(self, setup):
        repo, _, query = setup
        objective = ObjectiveFunction(NameSimilarity())
        calls = []
        original = objective.label_cost
        objective.label_cost = lambda *args: (calls.append(args), original(*args))[1]
        kernel = CostKernel(objective, repo)
        for schema in repo:
            ScoreMatrix.build(objective, query, schema, kernel=kernel)
            ScoreMatrix.build(objective, query, schema, kernel=kernel)
        distinct_query = {
            (args[0], args[1]) for args in calls
        }
        assert len(calls) == len(distinct_query) * kernel.distinct_labels
        assert kernel.rows_built == len(distinct_query)

    def test_gather_matches_direct_build(self, setup):
        repo, objective, query = setup
        kernel = CostKernel(objective, repo)
        for schema in repo:
            direct = ScoreMatrix.build(objective, query, schema)
            gathered = ScoreMatrix.build(objective, query, schema, kernel=kernel)
            assert gathered.costs == direct.costs
            assert gathered.candidate_order == direct.candidate_order
            assert gathered.row_min == direct.row_min
            assert gathered.min_rest == direct.min_rest

    def test_gather_aliases_across_matrices(self, setup):
        repo, objective, query = setup
        kernel = CostKernel(objective, repo)
        schema = repo.schemas()[0]
        first = ScoreMatrix.build(objective, query, schema, kernel=kernel)
        second = ScoreMatrix.build(objective, query, schema, kernel=kernel)
        assert first.costs[0] is second.costs[0]  # shared gather tuples
        assert first.candidate_order[0] is second.candidate_order[0]

    def test_unknown_schema_falls_back(self, setup):
        repo, objective, query = setup
        kernel = CostKernel(objective, repo)
        foreign = Schema("foreign", SchemaElement("whole other", Datatype.COMPLEX))
        assert kernel.schema_label_ids(foreign) is None
        assert kernel.gather("anything", Datatype.STRING, foreign) is None
        # build() silently takes the direct path
        matrix = ScoreMatrix.build(objective, query, foreign, kernel=kernel)
        assert matrix.costs == ScoreMatrix.build(objective, query, foreign).costs

    def test_rows_migrate_across_delta(self, setup):
        repo, objective, query = setup
        kernel = CostKernel(objective, repo)
        for schema in repo:
            ScoreMatrix.build(objective, query, schema, kernel=kernel)
        rows_before = kernel.rows_cached
        evolved, _ = repo.apply(churn_delta(repo, churn=0.3, seed=3))
        migrated = CostKernel(objective, evolved, previous=kernel)
        assert migrated.rows_migrated == rows_before
        fresh = CostKernel(objective, evolved)
        for schema in evolved:
            via_migrated = ScoreMatrix.build(
                objective, query, schema, kernel=migrated
            )
            via_fresh = ScoreMatrix.build(objective, query, schema, kernel=fresh)
            assert via_migrated.costs == via_fresh.costs
            assert via_migrated.candidate_order == via_fresh.candidate_order

    def test_foreign_objective_rows_not_migrated(self, setup):
        repo, objective, _ = setup
        other = ObjectiveFunction(NameSimilarity(), objective.weights)
        assert other.fingerprint() != objective.fingerprint()
        kernel = CostKernel(objective, repo)
        kernel.row("anything", Datatype.STRING)
        migrated = CostKernel(other, repo, previous=kernel)
        assert migrated.rows_migrated == 0
        assert migrated.rows_cached == 0

    def test_state_round_trip(self, setup):
        repo, objective, query = setup
        kernel = CostKernel(objective, repo)
        for schema in repo:
            ScoreMatrix.build(objective, query, schema, kernel=kernel)
        state = json.loads(json.dumps(kernel.export_state()))
        restored = CostKernel.from_state(objective, repo, state)
        assert restored.rows_migrated == kernel.rows_cached
        assert restored._rows == kernel._rows
        assert restored._labels == kernel._labels

    def test_state_row_length_mismatch_rejected(self, setup):
        repo, objective, _ = setup
        kernel = CostKernel(objective, repo)
        kernel.row("order", Datatype.STRING)
        state = kernel.export_state()
        state["rows"][0][2].append(0.5)
        with pytest.raises(SnapshotError, match="universe"):
            CostKernel.from_state(objective, repo, state)

    def test_state_saved_mid_evolution_still_restores(self, setup):
        """Digest drift migrates the overlap instead of refusing."""
        repo, objective, _ = setup
        kernel = CostKernel(objective, repo)
        kernel.row("order", Datatype.STRING)
        evolved, _ = repo.apply(churn_delta(repo, churn=0.3, seed=7))
        restored = CostKernel.from_state(
            objective, evolved, kernel.export_state()
        )
        assert restored.repository_digest == evolved.content_digest()
        fresh = CostKernel(objective, evolved)
        fresh.row("order", Datatype.STRING)
        assert restored._rows[("order", Datatype.STRING)] == fresh._rows[
            ("order", Datatype.STRING)
        ]

    def test_enable_toggle_and_context(self):
        assert kernel_enabled()
        previous = set_kernel_enabled(False)
        assert previous is True
        assert not kernel_enabled()
        set_kernel_enabled(True)
        with kernel_disabled():
            assert not kernel_enabled()
        assert kernel_enabled()

    def test_substrate_builds_kernel_on_prepare(self, setup):
        repo, _, _ = setup
        objective = ObjectiveFunction(NameSimilarity())
        substrate = objective.substrate()
        substrate.prepare(repo)
        assert substrate.kernel() is not None
        assert substrate.stats.kernel_builds == 1
        substrate.prepare(repo)  # idempotent per content
        assert substrate.stats.kernel_builds == 1
        with kernel_disabled():
            assert substrate.kernel() is None  # switch honoured on reads

    def test_substrate_skips_kernel_when_disabled(self, setup):
        repo, _, _ = setup
        objective = ObjectiveFunction(NameSimilarity())
        substrate = objective.substrate()
        with kernel_disabled():
            substrate.prepare(repo)
            assert substrate.kernel() is None
        assert substrate.kernel() is None  # never built

    def test_kernel_rebuilds_after_evolution(self, setup):
        repo, _, _ = setup
        objective = ObjectiveFunction(NameSimilarity())
        substrate = objective.substrate()
        substrate.prepare(repo)
        substrate.kernel().row("order", Datatype.STRING)
        evolved, _ = repo.apply(churn_delta(repo, churn=0.2, seed=11))
        substrate.prepare(evolved)
        assert substrate.stats.kernel_builds == 2
        assert substrate.stats.kernel_rows_migrated == 1
        assert substrate.kernel().repository_digest == evolved.content_digest()


class TestNameSimilarityMemo:
    def test_memo_shared_across_spellings(self):
        sim = NameSimilarity()
        value = sim.similarity("Order ID", "Customer Name")
        entries = len(sim._memo)
        assert sim.similarity("order_id", "customerName") == value
        assert len(sim._memo) == entries  # same normalised key

    def test_identical_normalisation_scores_one(self):
        sim = NameSimilarity()
        assert sim.similarity("Order ID", "order_id") == 1.0

    def test_memo_bounded(self):
        sim = NameSimilarity(memo_limit=4)
        for i in range(10):
            sim.similarity(f"label{i}", f"other{i}")
        assert len(sim._memo) <= 4
        assert len(sim._norm_cache) <= 4

    def test_eviction_recomputes_identically(self):
        sim = NameSimilarity(memo_limit=2)
        first = sim.similarity("author", "writer")
        for i in range(5):  # evict the entry
            sim.similarity(f"label{i}", f"other{i}")
        assert sim.similarity("author", "writer") == first

    def test_invalid_memo_limit_rejected(self):
        with pytest.raises(MatchingError):
            NameSimilarity(memo_limit=0)


class TestInternedClustering:
    def _canonical(self, clusters):
        return [(c.leader_name, sorted(c.members)) for c in clusters]

    @pytest.mark.parametrize("threshold", [0.4, 0.55, 0.7])
    def test_interned_equals_scan(self, setup, threshold):
        repo, objective, _ = setup
        clusterer = ElementClusterer(
            objective.name_similarity, join_threshold=threshold
        )
        assert self._canonical(
            clusterer._cluster_interned(repo)
        ) == self._canonical(clusterer._cluster_scan(repo))

    def test_interned_equals_scan_adversarial(self):
        """Duplicate labels, empty normalisations, a 1.0 thesaurus."""

        def schema(schema_id, names):
            root = SchemaElement(names[0], Datatype.COMPLEX)
            for name in names[1:]:
                root.add_child(SchemaElement(name))
            return Schema(schema_id, root)

        repo = SchemaRepository(
            "adv",
            [
                schema("s1", ["order", "-", "__", "Order ID", "order_id"]),
                schema("s2", ["orderId", "-", "price", "cost", "order id"]),
                schema("s3", ["zz9", "price", "-", "..."]),
            ],
        )
        for threshold in (0.3, 0.55, 0.9):
            for score in (0.95, 1.0):
                sim = NameSimilarity(
                    Thesaurus([("price", "cost")]), thesaurus_score=score
                )
                clusterer = ElementClusterer(sim, join_threshold=threshold)
                assert self._canonical(
                    clusterer._cluster_interned(repo)
                ) == self._canonical(clusterer._cluster_scan(repo))

    def test_cluster_build_shared_across_matchers(self, setup, monkeypatch):
        repo, _, _ = setup
        objective = ObjectiveFunction(NameSimilarity())
        clustering = ClusteringMatcher(objective, clusters_per_element=2)
        hybrid = HybridMatcher(objective, clusters_per_element=3)
        builds = []
        original = ElementClusterer._cluster_interned
        monkeypatch.setattr(
            ElementClusterer,
            "_cluster_interned",
            lambda self, repository: (builds.append(1), original(self, repository))[1],
        )
        clustering.prepare(repo)
        hybrid.prepare(repo)
        # same similarity + threshold + repository -> one interned build
        assert len(builds) == 1
        assert self._canonical(clustering._clusters) == self._canonical(
            hybrid._clusters
        )

    def test_cached_clusters_are_private_copies(self, setup):
        repo, _, _ = setup
        objective = ObjectiveFunction(NameSimilarity())
        clustering = ClusteringMatcher(objective, clusters_per_element=2)
        hybrid = HybridMatcher(objective, clusters_per_element=3)
        clustering.prepare(repo)
        hybrid.prepare(repo)
        # mutating one matcher's view must not leak into the other's
        clustering._clusters[0].members.add(("poison", 0))
        assert ("poison", 0) not in hybrid._clusters[0].members

    def test_clusters_not_shared_when_kernel_disabled(self, setup, monkeypatch):
        repo, _, _ = setup
        objective = ObjectiveFunction(NameSimilarity())
        clustering = ClusteringMatcher(objective, clusters_per_element=2)
        hybrid = HybridMatcher(objective, clusters_per_element=3)
        scans = []
        original = ElementClusterer._cluster_scan
        monkeypatch.setattr(
            ElementClusterer,
            "_cluster_scan",
            lambda self, repository: (scans.append(1), original(self, repository))[1],
        )
        with kernel_disabled():
            clustering.prepare(repo)
            hybrid.prepare(repo)
        assert len(scans) == 2  # the PR-4 per-matcher behavior

    def test_matcher_output_unchanged_by_sharing(self, setup):
        repo, objective, query = setup
        matcher = ClusteringMatcher(objective, clusters_per_element=2)
        on = matcher.match(query, repo, 0.3)
        with kernel_disabled():
            off = ClusteringMatcher(objective, clusters_per_element=2).match(
                query, repo, 0.3
            )
        assert [
            (answer.item.key, answer.score) for answer in on.answers()
        ] == [(answer.item.key, answer.score) for answer in off.answers()]


class TestAssembleFastPath:
    def test_trusted_mapping_equals_validated(self, setup):
        repo, objective, query = setup
        matcher = ExhaustiveMatcher(objective)
        answers = matcher.match(query, repo, 0.35)
        assert len(answers) > 0
        for answer in answers.answers():
            mapping = answer.item
            from repro.matching.mapping import Mapping

            validated = Mapping(mapping.query_schema_id, mapping.targets)
            assert validated == mapping
            assert hash(validated) == hash(mapping)
            assert validated.target_ids == mapping.target_ids
            assert validated.key == mapping.key

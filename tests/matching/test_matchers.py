"""Integration-grade unit tests for the four matching systems.

The decisive invariants: every improvement's answer set is a subset of
the exhaustive system's with identical scores, at every threshold.
"""

import pytest

from repro.errors import MatchingError
from repro.matching import (
    BeamMatcher,
    ClusteringMatcher,
    ExhaustiveMatcher,
    TopKCandidateMatcher,
)
from repro.matching.clustering import ElementClusterer
from repro.matching.objective import ObjectiveFunction
from repro.matching.similarity.name import NameSimilarity, Thesaurus
from repro.schema.generator import GeneratorConfig, generate_repository
from repro.schema.mutations import extract_personal_schema
from repro.schema.vocabulary import builtin_domains
from repro.util import rng


@pytest.fixture(scope="module")
def setup():
    repo = generate_repository(
        GeneratorConfig(num_schemas=8, min_size=8, max_size=16, seed=42)
    )
    thesaurus = Thesaurus.from_vocabularies(
        builtin_domains().values(), coverage=0.7, seed=5
    )
    objective = ObjectiveFunction(NameSimilarity(thesaurus))
    query = extract_personal_schema(
        rng.make_tagged(30), repo.schemas()[0], None, target_size=3,
        schema_id="tq",
    )
    exhaustive = ExhaustiveMatcher(objective).match(query, repo, 0.35)
    return repo, objective, query, exhaustive


IMPROVEMENTS = [
    ("beam", lambda obj: BeamMatcher(obj, beam_width=6)),
    ("clustering", lambda obj: ClusteringMatcher(obj, clusters_per_element=2)),
    ("topk", lambda obj: TopKCandidateMatcher(obj, candidates_per_element=4)),
]


class TestExhaustive:
    def test_monotone_in_threshold(self, setup):
        repo, objective, query, _ = setup
        matcher = ExhaustiveMatcher(objective)
        low = matcher.match(query, repo, 0.2)
        high = matcher.match(query, repo, 0.35)
        assert low.is_subset_of(high)

    def test_all_scores_within_threshold(self, setup):
        _repo, _objective, _query, answers = setup
        assert all(a.score <= 0.35 + 1e-9 for a in answers)

    def test_scores_recomputable(self, setup):
        _repo, objective, query, answers = setup
        for answer in list(answers)[:25]:
            assert objective.mapping_cost(query, answer.item) == answer.score

    def test_negative_threshold_rejected(self, setup):
        repo, objective, query, _ = setup
        with pytest.raises(MatchingError):
            ExhaustiveMatcher(objective).match(query, repo, -0.1)

    def test_max_answers_guard(self, setup):
        repo, objective, query, _ = setup
        matcher = ExhaustiveMatcher(objective, max_answers=1)
        with pytest.raises(MatchingError, match="max_answers"):
            matcher.match(query, repo, 0.35)


class TestImprovements:
    @pytest.mark.parametrize("name,factory", IMPROVEMENTS)
    def test_subset_property(self, setup, name, factory):
        repo, objective, query, exhaustive = setup
        improved = factory(objective).match(query, repo, 0.35)
        improved.check_subset_of(exhaustive, name)

    @pytest.mark.parametrize("name,factory", IMPROVEMENTS)
    def test_identical_scores(self, setup, name, factory):
        repo, objective, query, exhaustive = setup
        improved = factory(objective).match(query, repo, 0.35)
        improved.check_scores_match(exhaustive)

    @pytest.mark.parametrize("name,factory", IMPROVEMENTS)
    def test_subset_at_every_threshold(self, setup, name, factory):
        repo, objective, query, exhaustive = setup
        improved = factory(objective).match(query, repo, 0.35)
        for delta in (0.1, 0.2, 0.3, 0.35):
            assert improved.at_threshold(delta).is_subset_of(
                exhaustive.at_threshold(delta)
            )

    @pytest.mark.parametrize("name,factory", IMPROVEMENTS)
    def test_describe_reports_parameters(self, setup, name, factory):
        _repo, objective, _query, _ = setup
        description = factory(objective).describe()
        assert description["system"] == name
        assert "objective" in description

    def test_check_compatible_passes_for_shared_objective(self, setup):
        _repo, objective, _query, _ = setup
        ExhaustiveMatcher(objective).check_compatible(BeamMatcher(objective))

    def test_invalid_parameters_rejected(self, setup):
        _repo, objective, _query, _ = setup
        with pytest.raises(MatchingError):
            BeamMatcher(objective, beam_width=0)
        with pytest.raises(MatchingError):
            ClusteringMatcher(objective, clusters_per_element=0)
        with pytest.raises(MatchingError):
            TopKCandidateMatcher(objective, candidates_per_element=0)


class TestBeamSpecifics:
    def test_wider_beam_retains_more(self, setup):
        repo, objective, query, _ = setup
        narrow = BeamMatcher(objective, beam_width=2).match(query, repo, 0.35)
        wide = BeamMatcher(objective, beam_width=32).match(query, repo, 0.35)
        assert len(narrow) <= len(wide)
        assert narrow.is_subset_of(wide)


class TestClusteringSpecifics:
    def test_clusterer_deterministic(self, setup):
        repo, objective, _query, _ = setup
        clusterer = ElementClusterer(objective.name_similarity)
        first = clusterer.cluster(repo)
        second = clusterer.cluster(repo)
        assert [c.members for c in first] == [c.members for c in second]

    def test_clusters_partition_elements(self, setup):
        repo, objective, _query, _ = setup
        clusters = ElementClusterer(objective.name_similarity).cluster(repo)
        all_members = [key for c in clusters for key in c.members]
        assert len(all_members) == repo.element_count()
        assert len(set(all_members)) == len(all_members)

    def test_invalid_join_threshold(self, setup):
        _repo, objective, _query, _ = setup
        with pytest.raises(MatchingError):
            ElementClusterer(objective.name_similarity, join_threshold=0.0)

    def test_more_clusters_retain_more(self, setup):
        repo, objective, query, _ = setup
        narrow = ClusteringMatcher(objective, clusters_per_element=1).match(
            query, repo, 0.35
        )
        wide = ClusteringMatcher(objective, clusters_per_element=5).match(
            query, repo, 0.35
        )
        assert len(narrow) <= len(wide)

    def test_prepare_caches_per_repository(self, setup):
        repo, objective, query, _ = setup
        matcher = ClusteringMatcher(objective, clusters_per_element=2)
        matcher.prepare(repo)
        clusters_first = matcher._clusters
        matcher.prepare(repo)
        assert matcher._clusters is clusters_first


class TestTopKSpecifics:
    def test_larger_k_retains_more(self, setup):
        repo, objective, query, _ = setup
        small = TopKCandidateMatcher(objective, candidates_per_element=2).match(
            query, repo, 0.35
        )
        large = TopKCandidateMatcher(objective, candidates_per_element=8).match(
            query, repo, 0.35
        )
        assert len(small) <= len(large)
        assert small.is_subset_of(large)

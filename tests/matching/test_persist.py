"""Matching-state persistence: warm starts that cannot lie.

Round-trip fidelity (restored substrate matrices and reassembled answer
sets are byte-identical to the originals) plus the fingerprint gates: a
snapshot saved under any other objective/matcher configuration, against
any other repository version or query list, refuses to load with a
:class:`~repro.errors.SnapshotError` — never a silent cold start.
"""

import pytest

from repro.errors import SnapshotError
from repro.evaluation import build_workload, small_config
from repro.matching import (
    EvolutionSession,
    ExhaustiveMatcher,
    MatchingPipeline,
    NameSimilarity,
    ObjectiveFunction,
    ObjectiveWeights,
    load_snapshot,
    make_matcher,
    save_snapshot,
)
from repro.matching.similarity.persist import (
    restore_results,
    restore_substrate,
    results_payload,
    substrate_payload,
)
from repro.schema import SnapshotStore, churn_delta


@pytest.fixture(scope="module")
def workload():
    return build_workload(small_config())


@pytest.fixture(scope="module")
def queries(workload):
    return [scenario.query for scenario in workload.suite.scenarios]


@pytest.fixture(scope="module")
def result(workload, queries):
    matcher = ExhaustiveMatcher(workload.objective)
    return MatchingPipeline(matcher, cache=False).run(
        queries, workload.repository, 0.3
    )


def _canonical(answer_sets) -> bytes:
    return repr(
        [
            [(answer.item.key, answer.score) for answer in answers.answers()]
            for answers in answer_sets
        ]
    ).encode()


def _fresh_universe():
    """A content-identical workload with its own objective/substrate.

    Deterministic generation means the same config yields digest-equal
    schemas — the stand-in for a restarted process.
    """
    return build_workload(small_config())


class TestSubstrateRoundTrip:
    def test_matrices_and_index_survive(self, workload, queries, result):
        payload = substrate_payload(workload.objective.substrate())
        fresh = _fresh_universe()
        substrate = fresh.objective.substrate()
        restored = restore_substrate(substrate, payload, fresh.repository)
        assert restored == len(workload.objective.substrate().cached_matrices())
        # restored matrices are bit-identical to freshly built ones
        for matrix in workload.objective.substrate().cached_matrices():
            twin = next(
                m for m in substrate.cached_matrices()
                if (m.query_digest, m.schema_digest)
                == (matrix.query_digest, matrix.schema_digest)
            )
            assert twin.costs == matrix.costs
            assert twin.candidate_order == matrix.candidate_order
            assert twin.min_rest == matrix.min_rest
        # the index carried over without re-tokenising a single schema
        index = substrate.token_index()
        assert index is not None
        assert index.reused_schemas == len(fresh.repository)
        assert index.tokens() == (
            workload.objective.substrate().token_index().tokens()
        )

    def test_warm_substrate_builds_nothing(self, workload, queries, result):
        payload = substrate_payload(workload.objective.substrate())
        fresh = _fresh_universe()
        substrate = fresh.objective.substrate()
        restore_substrate(substrate, payload, fresh.repository)
        matcher = ExhaustiveMatcher(fresh.objective)
        fresh_queries = [s.query for s in fresh.suite.scenarios]
        run = MatchingPipeline(matcher, cache=False).run(
            fresh_queries, fresh.repository, 0.3
        )
        assert substrate.stats.matrices_built == 0  # warm start: O(load)
        assert _canonical(run.answer_sets) == _canonical(result.answer_sets)

    def test_restore_aliases_duplicate_rows(self):
        """Like ``build``, ``restore`` shares one tuple/order pair across
        identical rows — warm-start cost stays O(distinct labels)."""
        from repro.matching import ScoreMatrix

        duplicate = [0.5, 0.1, 0.3]
        matrix = ScoreMatrix.restore(
            "q", "s", [duplicate, [0.2, 0.9, 0.0], duplicate]
        )
        assert matrix.costs[0] is matrix.costs[2]
        assert matrix.candidate_order[0] is matrix.candidate_order[2]
        assert matrix.candidate_order[0] == (1, 2, 0)
        assert matrix.candidate_order[1] == (2, 0, 1)

    def test_objective_mismatch_is_loud(self, workload):
        payload = substrate_payload(workload.objective.substrate())
        other = ObjectiveFunction(
            NameSimilarity(workload.objective.name_similarity.thesaurus),
            ObjectiveWeights(structure=0.5),
        )
        with pytest.raises(SnapshotError, match="different objective"):
            restore_substrate(other.substrate(), payload, workload.repository)


class TestResultsRoundTrip:
    def test_answer_sets_reassemble_byte_identically(
        self, workload, queries, result
    ):
        payload = results_payload(result)
        fresh = _fresh_universe()
        matcher = ExhaustiveMatcher(fresh.objective)
        fresh_queries = [s.query for s in fresh.suite.scenarios]
        restored = restore_results(
            matcher, fresh_queries, fresh.repository, payload
        )
        assert _canonical(restored.answer_sets) == _canonical(result.answer_sets)
        assert restored.pair_results == result.pair_results
        assert restored.query_digests == result.query_digests
        assert restored.delta_max == result.delta_max

    def test_matcher_mismatch_is_loud(self, workload, queries, result):
        payload = results_payload(result)
        beam = make_matcher("beam", workload.objective, beam_width=4)
        with pytest.raises(SnapshotError, match="differently configured"):
            restore_results(beam, queries, workload.repository, payload)

    def test_repository_mismatch_is_loud(self, workload, queries, result):
        payload = results_payload(result)
        evolved, _ = workload.repository.apply(
            churn_delta(workload.repository, churn=0.3, seed=1)
        )
        matcher = ExhaustiveMatcher(workload.objective)
        with pytest.raises(SnapshotError, match="different repository"):
            restore_results(matcher, queries, evolved, payload)

    def test_query_mismatch_is_loud(self, workload, queries, result):
        payload = results_payload(result)
        matcher = ExhaustiveMatcher(workload.objective)
        with pytest.raises(SnapshotError, match="different query list"):
            restore_results(
                matcher, queries[:-1], workload.repository, payload
            )


class TestWholeSnapshots:
    def test_round_trip(self, tmp_path, workload, queries, result):
        store = save_snapshot(
            tmp_path / "snap",
            workload.repository,
            queries=queries,
            result=result,
            substrate=workload.objective.substrate(),
        )
        fresh = _fresh_universe()
        snapshot = load_snapshot(store, ExhaustiveMatcher(fresh.objective))
        assert snapshot.repository.content_digest() == (
            workload.repository.content_digest()
        )
        assert [q.content_digest() for q in snapshot.queries] == [
            q.content_digest() for q in queries
        ]
        assert snapshot.matrices_restored > 0
        assert _canonical(snapshot.result.answer_sets) == _canonical(
            result.answer_sets
        )

    def test_repository_only_snapshot(self, tmp_path, workload):
        store = save_snapshot(tmp_path / "bare", workload.repository)
        snapshot = load_snapshot(
            store, ExhaustiveMatcher(_fresh_universe().objective)
        )
        assert snapshot.result is None
        assert snapshot.queries == []
        assert snapshot.matrices_restored == 0

    def test_save_refuses_mismatched_result(
        self, tmp_path, workload, queries, result
    ):
        evolved, _ = workload.repository.apply(
            churn_delta(workload.repository, churn=0.3, seed=2)
        )
        with pytest.raises(SnapshotError, match="not computed against"):
            save_snapshot(
                tmp_path / "bad", evolved, queries=queries, result=result
            )
        with pytest.raises(SnapshotError, match="not computed for"):
            save_snapshot(
                tmp_path / "bad",
                workload.repository,
                queries=queries[:-1],
                result=result,
            )

    def test_results_without_pair_results_refused(self, workload, result):
        import dataclasses

        hollow = dataclasses.replace(result, pair_results=[])
        with pytest.raises(SnapshotError, match="pair_results"):
            results_payload(hollow)

    def test_truncated_results_section_is_loud(
        self, tmp_path, workload, queries, result
    ):
        store = save_snapshot(
            tmp_path / "snap",
            workload.repository,
            queries=queries,
            result=result,
        )
        path = next(store.root.glob("results-*.json"))
        path.write_bytes(path.read_bytes()[:-40])
        with pytest.raises(SnapshotError, match="corrupt"):
            load_snapshot(store, ExhaustiveMatcher(workload.objective))

    def test_load_with_wrong_matcher_is_loud(
        self, tmp_path, workload, queries, result
    ):
        store = save_snapshot(
            tmp_path / "snap",
            workload.repository,
            queries=queries,
            result=result,
        )
        beam = make_matcher("beam", workload.objective, beam_width=4)
        with pytest.raises(SnapshotError, match="differently configured"):
            load_snapshot(store, beam)

    def test_checkpoint_over_snapshot_is_incremental_and_pruned(
        self, tmp_path, workload, queries, result
    ):
        """Re-saves skip identical payloads, never overwrite referenced
        ones in place (mutable sections are digest-named), and prune
        what the new manifest no longer references."""
        store = save_snapshot(
            tmp_path / "snap",
            workload.repository,
            queries=queries,
            result=result,
        )
        first_results = next(store.root.glob("results-*.json"))
        schema_file = next(store.root.glob("schemas/*.schema"))
        before = schema_file.stat().st_mtime_ns

        # checkpoint the evolved state over the same directory
        matcher = ExhaustiveMatcher(workload.objective)
        session = EvolutionSession.from_state(
            matcher, workload.repository, result, queries, cache=False
        )
        evolved_result, report = session.apply(
            churn_delta(workload.repository, churn=0.2, seed=12)
        )
        save_snapshot(
            store,
            session.repository,
            queries=queries,
            result=evolved_result,
        )
        second_results = next(store.root.glob("results-*.json"))
        # different content ⇒ different section file; the old one is
        # pruned only after the new manifest landed
        assert second_results.name != first_results.name
        assert not first_results.exists()
        # unchanged schema payloads were not rewritten
        if schema_file.exists():  # schema survived the churn delta
            assert schema_file.stat().st_mtime_ns == before
        # replaced schemas' payloads do not accumulate: every payload on
        # disk is referenced by the manifest
        manifest = store.manifest()
        on_disk = {
            path.relative_to(store.root).as_posix()
            for path in store.root.rglob("*") if path.is_file()
        }
        assert on_disk == set(manifest["sections"]) | {
            "manifest.json", ".snapshot-store"
        }
        # and the checkpoint still loads cleanly
        loaded = load_snapshot(store, ExhaustiveMatcher(workload.objective))
        assert _canonical(loaded.result.answer_sets) == _canonical(
            evolved_result.answer_sets
        )
        assert report.new_digest == loaded.repository.content_digest()

    def test_store_path_coercion(self, tmp_path, workload):
        store = save_snapshot(str(tmp_path / "s"), workload.repository)
        assert isinstance(store, SnapshotStore)
        assert load_snapshot(
            str(tmp_path / "s"), ExhaustiveMatcher(workload.objective)
        ).repository.content_digest() == workload.repository.content_digest()


class TestSessionResume:
    def test_from_state_then_delta_matches_cold(
        self, tmp_path, workload, queries, result
    ):
        """The full warm-start story: resume, evolve, stay byte-identical."""
        store = save_snapshot(
            tmp_path / "snap",
            workload.repository,
            queries=queries,
            result=result,
            substrate=workload.objective.substrate(),
        )
        fresh = _fresh_universe()
        matcher = ExhaustiveMatcher(fresh.objective)
        snapshot = load_snapshot(store, matcher)
        session = EvolutionSession.from_state(
            matcher,
            snapshot.repository,
            snapshot.result,
            snapshot.queries,
            cache=False,
        )
        delta = churn_delta(snapshot.repository, churn=0.25, seed=9)
        incremental, _report = session.apply(delta)
        cold = MatchingPipeline(matcher, cache=False).run(
            snapshot.queries, session.repository, 0.3
        )
        assert _canonical(incremental.answer_sets) == _canonical(
            cold.answer_sets
        )

    def test_from_state_validations(self, workload, queries, result):
        matcher = ExhaustiveMatcher(workload.objective)
        beam = make_matcher("beam", workload.objective, beam_width=4)
        from repro.errors import MatchingError

        with pytest.raises(MatchingError, match="differently configured"):
            EvolutionSession.from_state(
                beam, workload.repository, result, queries
            )
        evolved, _ = workload.repository.apply(
            churn_delta(workload.repository, churn=0.3, seed=3)
        )
        with pytest.raises(MatchingError, match="different repository"):
            EvolutionSession.from_state(matcher, evolved, result, queries)
        with pytest.raises(MatchingError, match="different query list"):
            EvolutionSession.from_state(
                matcher, workload.repository, result, queries[:-1]
            )

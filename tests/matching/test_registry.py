"""Unit tests for the matcher registry."""

import pytest

from repro.errors import MatchingError
from repro.matching.objective import ObjectiveFunction
from repro.matching.registry import available_matchers, make_matcher
from repro.matching.similarity.name import NameSimilarity


def objective() -> ObjectiveFunction:
    return ObjectiveFunction(NameSimilarity())


class TestRegistry:
    def test_available_names(self):
        assert available_matchers() == [
            "beam",
            "clustering",
            "exhaustive",
            "hybrid",
            "topk",
        ]

    def test_make_each(self):
        obj = objective()
        for name in available_matchers():
            matcher = make_matcher(name, obj)
            assert matcher.name == name
            assert matcher.objective is obj

    def test_parameters_forwarded(self):
        matcher = make_matcher("beam", objective(), beam_width=3)
        assert matcher.beam_width == 3

    def test_unknown_name_lists_available(self):
        with pytest.raises(MatchingError, match="available:"):
            make_matcher("magic", objective())

    def test_shared_objective_compatibility(self):
        obj = objective()
        a = make_matcher("exhaustive", obj)
        b = make_matcher("clustering", obj)
        a.check_compatible(b)

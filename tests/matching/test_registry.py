"""Unit tests for the matcher registry."""

import pytest

from repro.errors import MatchingError
from repro.matching.objective import ObjectiveFunction
from repro.matching.registry import available_matchers, make_matcher
from repro.matching.similarity.name import NameSimilarity

#: the registry's backend variants match through a *derived* objective
#: (same name similarity and weights, different backend); everything
#: else shares the objective instance it was built with
BACKEND_VARIANTS = ("bm25", "dense", "ensemble")


def objective() -> ObjectiveFunction:
    return ObjectiveFunction(NameSimilarity())


class TestRegistry:
    def test_available_names(self):
        assert available_matchers() == [
            "beam",
            "bm25",
            "clustering",
            "dense",
            "ensemble",
            "exhaustive",
            "hybrid",
            "topk",
        ]

    def test_make_each(self):
        obj = objective()
        for name in available_matchers():
            matcher = make_matcher(name, obj)
            assert matcher.name == name
            if name in BACKEND_VARIANTS:
                assert matcher.objective is not obj
                assert matcher.objective.name_similarity is obj.name_similarity
                assert matcher.objective.weights is obj.weights
            else:
                assert matcher.objective is obj

    def test_parameters_forwarded(self):
        matcher = make_matcher("beam", objective(), beam_width=3)
        assert matcher.beam_width == 3

    def test_variant_parameters_forwarded(self):
        matcher = make_matcher("bm25", objective(), k1=2.0, b=0.5)
        assert "bm25(k1=2.0,b=0.5)" in matcher.objective.fingerprint()

    def test_unknown_name_lists_available(self):
        with pytest.raises(MatchingError, match="available:"):
            make_matcher("magic", objective())

    def test_shared_objective_compatibility(self):
        obj = objective()
        a = make_matcher("exhaustive", obj)
        b = make_matcher("clustering", obj)
        a.check_compatible(b)

    def test_variants_not_compatible_with_base_family(self):
        from repro.errors import ObjectiveMismatchError

        obj = objective()
        base = make_matcher("exhaustive", obj)
        for name in BACKEND_VARIANTS:
            with pytest.raises(ObjectiveMismatchError):
                base.check_compatible(make_matcher(name, obj))

"""Test subpackage."""

"""Benchmarks of the pluggable similarity backends.

Two questions with teeth:

* **Does the backend seam cost anything?**  The default objective now
  routes its name-cost term through a :class:`LexicalBackend` instead of
  calling :class:`NameSimilarity` directly.  The contract —
  ``test_backend_seam_sweep_identical_and_cheap`` — replays a
  repository sweep with the seam on and off (the fifth A/B switch,
  :func:`~repro.matching.similarity.backends.backends_disabled`),
  asserting **byte-identical answers always** and, when
  ``BENCH_TIMING_ASSERTS`` is not ``0`` (the convention in
  ``benchmarks/README.md``), that the seam adds no more than 25 %
  wall clock to the sweep it refactored.
* **What does each backend cost per pair, and per corpus?**  The micro
  benches time each backend's cold ``similarity`` over the same label
  pairs, BM25's corpus preparation, and one registry-variant match per
  family — their relative means in ``BENCH_backends.json`` track how
  the alternative name planes price against the lexical default.
"""

import gc
import os
from time import perf_counter

import pytest

from repro.evaluation import build_workload
from repro.evaluation.workloads import WorkloadConfig
from repro.matching import (
    BeamMatcher,
    EnsembleBackend,
    ExhaustiveMatcher,
    HashedVectorBackend,
    LexicalBackend,
    SparseBM25Backend,
    canonical_answers,
    make_matcher,
    set_backends_enabled,
)

#: the seam-contract workload: repository scale, so the per-pair name
#: scoring the seam wraps actually dominates the measured sweep
_SEAM_CONFIG = WorkloadConfig(
    num_schemas=160,
    min_schema_size=10,
    max_schema_size=20,
    num_queries=8,
    query_size=5,
)
_SEAM_THRESHOLDS = (0.2, 0.35)

#: the seam may not add more than this factor to the sweep wall clock
_SEAM_OVERHEAD_FACTOR = 1.25


def _label_pairs(workload, limit: int = 400):
    """(query label, repository label) pairs, the backends' unit of work."""
    query_labels = [
        element.name
        for scenario in workload.suite.scenarios
        for element in scenario.query.elements()
    ]
    repo_labels = [
        element.name
        for schema in workload.repository.schemas()[:8]
        for element in schema.elements()
    ]
    pairs = [(a, b) for a in query_labels for b in repo_labels]
    return pairs[:limit]


# -- per-pair scoring --------------------------------------------------------

def test_bench_lexical_pairs(benchmark, warmed_bundle):
    """The default backend: the established NameSimilarity blend."""
    workload = warmed_bundle.workload
    backend = LexicalBackend(workload.objective.name_similarity)
    pairs = _label_pairs(workload)
    benchmark(lambda: [backend.similarity(a, b) for a, b in pairs])


def test_bench_bm25_pairs(benchmark, warmed_bundle):
    """Cold BM25-weighted token overlap (memo cleared every round)."""
    workload = warmed_bundle.workload
    backend = SparseBM25Backend()
    backend.prepare(workload.repository)
    pairs = _label_pairs(workload)

    def cold():
        backend._memo.clear()
        return [backend.similarity(a, b) for a, b in pairs]

    benchmark(cold)


def test_bench_dense_pairs(benchmark, warmed_bundle):
    """Cold hashed character-n-gram cosine (memo cleared every round)."""
    workload = warmed_bundle.workload
    backend = HashedVectorBackend()
    pairs = _label_pairs(workload)

    def cold():
        backend._memo.clear()
        return [backend.similarity(a, b) for a, b in pairs]

    benchmark(cold)


def test_bench_ensemble_pairs(benchmark, warmed_bundle):
    """The weighted blend: every component scores every pair."""
    workload = warmed_bundle.workload
    bm25 = SparseBM25Backend()
    bm25.prepare(workload.repository)
    backend = EnsembleBackend(
        [
            LexicalBackend(workload.objective.name_similarity),
            bm25,
            HashedVectorBackend(),
        ],
        weights=[2.0, 1.0, 1.0],
    )
    pairs = _label_pairs(workload)
    benchmark(lambda: [backend.similarity(a, b) for a, b in pairs])


def test_bench_bm25_prepare(benchmark, warmed_bundle):
    """Freezing the corpus statistics (a full repository token scan)."""
    workload = warmed_bundle.workload
    benchmark(lambda: SparseBM25Backend().prepare(workload.repository))


# -- one match per registry variant ------------------------------------------

@pytest.mark.parametrize("family", ["exhaustive", "bm25", "dense", "ensemble"])
def test_bench_variant_match(benchmark, warmed_bundle, family):
    """One query matched under each backend family (fresh substrate).

    The relative means track what swapping the name plane costs at the
    matcher level — the dense backend pays hashing per distinct gram,
    BM25 pays its profile builds, the ensemble pays all components.
    """
    workload = warmed_bundle.workload
    query = workload.suite.scenarios[0].query

    def run():
        matcher = make_matcher(family, workload.objective)
        return matcher.match(query, workload.repository, 0.3)

    benchmark(run)


# -- the seam contract -------------------------------------------------------

def _seam_arm(seam_on: bool):
    """One timed sweep in a fresh universe; returns (answers, seconds).

    A fresh workload per arm keeps substrates and kernels cold so both
    arms pay identical scoring work; the only difference inside the
    timed region is the dispatch under test — name costs through the
    ``LexicalBackend`` seam versus the direct pre-backend path.  GC is
    paused around the timed window, symmetrically.
    """
    workload = build_workload(_SEAM_CONFIG)
    matchers = [
        ExhaustiveMatcher(workload.objective),
        BeamMatcher(workload.objective, beam_width=8),
    ]
    previous = set_backends_enabled(seam_on)
    gc.collect()
    gc.disable()
    try:
        started = perf_counter()
        answers = [
            matcher.match(scenario.query, workload.repository, delta)
            for matcher in matchers
            for delta in _SEAM_THRESHOLDS
            for scenario in workload.suite.scenarios
        ]
        seconds = perf_counter() - started
    finally:
        gc.enable()
        set_backends_enabled(previous)
    return canonical_answers(answers), seconds


def test_backend_seam_sweep_identical_and_cheap():
    """The acceptance check: same bytes through the seam, ≤ 25 % overhead.

    Two interleaved trials (fresh universes each); every trial asserts
    the seam-on sweep byte-identical to the pre-backend path,
    unconditionally.  Each side then takes its best total for the
    wall-clock comparison (measured overhead is ~0 on a quiet core —
    the seam is one method-call indirection under the substrate's
    memoisation).  The timing half is skipped when
    ``BENCH_TIMING_ASSERTS=0`` (CI's setting, where shared runners make
    single-shot timings flaky).
    """
    on_seconds = []
    off_seconds = []
    for _ in range(2):
        on_answers, on_time = _seam_arm(seam_on=True)
        off_answers, off_time = _seam_arm(seam_on=False)
        assert on_answers == off_answers, (
            "backend-seam answers differ from the pre-backend name path"
        )
        on_seconds.append(on_time)
        off_seconds.append(off_time)
    fast_on = min(on_seconds)
    fast_off = min(off_seconds)
    if os.environ.get("BENCH_TIMING_ASSERTS", "1") != "0":
        assert fast_on <= _SEAM_OVERHEAD_FACTOR * fast_off, (
            f"backend seam sweep ({fast_on:.3f}s) exceeds "
            f"{_SEAM_OVERHEAD_FACTOR}x the pre-backend path "
            f"({fast_off:.3f}s)"
        )

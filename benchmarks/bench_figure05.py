"""Bench fig05: measured P/R curve of the exhaustive system S1.

Times the judged-profile + curve construction over the default workload
and records the regenerated Figure 5 series.
"""

from repro.experiments import run_experiment


def test_fig05_measured_pr_curve(benchmark, warmed_bundle, record_figure):
    result = benchmark(run_experiment, "fig05", None)
    record_figure(result)
    rows = result.tables[0].rows
    # paper shape: precision falls while recall rises over the sweep
    assert rows[0][3] >= rows[-1][3]
    assert rows[0][4] <= rows[-1][4]

"""Bench fig13: sub-increment interpolation boundaries (exact example).

The experiment raises if the highlighted segment deviates from the
paper's (30/100, 30/54) — (34/100, 34/54).
"""

from repro.experiments import run_experiment


def test_fig13_subincrement_boundaries(benchmark, record_figure):
    result = benchmark(run_experiment, "fig13", None)
    record_figure(result)
    rows = result.tables[0].rows
    assert rows[0][0] == 50 and rows[-1][0] == 70

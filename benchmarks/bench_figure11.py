"""Bench fig11: best/worst/random bands for S2-one and S2-two.

The reproduction's headline artifact: bounds computed from sizes alone,
with the oracle-judged truth verified to lie inside each band.
"""

from repro.experiments import run_experiment


def test_fig11_bounds_two_systems(benchmark, warmed_bundle, record_figure):
    result = benchmark(run_experiment, "fig11", None)
    record_figure(result)
    assert not any("VIOLATED" in note for note in result.notes)
    for table in result.tables:
        for row in table.rows:
            _d, _ratio, p_worst, p_rand, p_actual, p_best = row[:6]
            assert p_worst - 1e-12 <= p_actual <= p_best + 1e-12
            assert p_worst - 1e-12 <= p_rand <= p_best + 1e-12

"""Bench fig09: effectiveness band for a fixed answer-size ratio of 0.9."""

from repro.experiments import run_experiment


def test_fig09_fixed_ratio_band(benchmark, warmed_bundle, record_figure):
    result = benchmark(run_experiment, "fig09", None)
    record_figure(result)
    for row in result.tables[0].rows:
        _d, ratio, _rs1, _ps1, r_worst, p_worst, r_best, p_best = row
        assert 0.8 <= ratio <= 1.0
        assert p_worst <= p_best
        assert r_worst <= r_best

"""Benchmarks of the serving layer: warm-start vs cold-start.

The snapshot store's reason to exist: a restarted process should come
back in **O(load)** — parse the persisted repository, adopt the
substrate, reassemble retained answer sets — instead of **O(rematch)**
— re-prepare the substrate and re-run every retained query against the
whole repository.  ``test_serving_warm_start_speedup_and_identical``
asserts the warm path is ≥ 3× faster than the cold path on the standard
(full default workload) repository sweep, with byte-identical answer
sets; as everywhere, byte-identity is asserted unconditionally and the
wall-clock half is skipped when ``BENCH_TIMING_ASSERTS=0`` (CI).

The ``test_bench_*`` trio feeds ``BENCH_serving.json``:
``test_bench_warm_start`` / ``test_bench_cold_start`` time the two
restart paths (their means' ratio tracks the ≥ 3× contract across
commits), and ``test_bench_snapshot_write`` times producing a snapshot
from live state (the checkpointing cost a serving process pays).
"""

import os
from time import perf_counter

import pytest

from repro.evaluation import build_workload
from repro.matching import (
    ExhaustiveMatcher,
    MatchingPipeline,
    canonical_answers,
    load_snapshot,
    save_snapshot,
)

_DELTA_MAX = 0.35


def _canonical(answer_sets) -> list:
    return canonical_answers(answer_sets)  # the one shared definition


def _fresh_setup():
    """A fresh full workload: the state a restarted process begins from."""
    workload = build_workload(None)
    queries = [scenario.query for scenario in workload.suite.scenarios]
    return workload, queries


def _write_snapshot(root):
    """Run the standard sweep once and persist it; returns expected answers."""
    workload, queries = _fresh_setup()
    matcher = ExhaustiveMatcher(workload.objective)
    result = MatchingPipeline(matcher, cache=False).run(
        queries, workload.repository, _DELTA_MAX
    )
    save_snapshot(
        root,
        workload.repository,
        queries=queries,
        result=result,
        substrate=workload.objective.substrate(),
    )
    return _canonical(result.answer_sets)


@pytest.fixture(scope="module")
def snapshot(tmp_path_factory):
    root = tmp_path_factory.mktemp("serving") / "snap"
    expected = _write_snapshot(root)
    return root, expected


def _warm_start(root, workload):
    """The warm restart path: load + verify + reassemble, no matching."""
    matcher = ExhaustiveMatcher(workload.objective)
    snapshot = load_snapshot(root, matcher)
    assert snapshot.result is not None
    return snapshot.result.answer_sets


def _cold_start(workload, queries):
    """The cold restart path: prepare + full repository sweep."""
    matcher = ExhaustiveMatcher(workload.objective)
    result = MatchingPipeline(matcher, cache=False).run(
        queries, workload.repository, _DELTA_MAX
    )
    return result.answer_sets


def test_bench_warm_start(benchmark, snapshot):
    root, expected = snapshot

    def setup():
        return (_fresh_setup(),), {}

    def warm(fresh):
        workload, _queries = fresh
        matcher = ExhaustiveMatcher(workload.objective)
        loaded = load_snapshot(root, matcher)
        assert _canonical(loaded.result.answer_sets) == expected
        return loaded

    benchmark.pedantic(warm, setup=setup, rounds=3, iterations=1)


def test_bench_cold_start(benchmark, snapshot):
    _root, expected = snapshot

    def setup():
        return (_fresh_setup(),), {}

    def cold(fresh):
        workload, queries = fresh
        matcher = ExhaustiveMatcher(workload.objective)
        result = MatchingPipeline(matcher, cache=False).run(
            queries, workload.repository, _DELTA_MAX
        )
        assert _canonical(result.answer_sets) == expected
        return result

    benchmark.pedantic(cold, setup=setup, rounds=2, iterations=1)


def test_bench_snapshot_write(benchmark, tmp_path):
    """Checkpointing cost: serialize live state to a snapshot directory."""
    workload, queries = _fresh_setup()
    matcher = ExhaustiveMatcher(workload.objective)
    result = MatchingPipeline(matcher, cache=False).run(
        queries, workload.repository, _DELTA_MAX
    )
    benchmark(
        save_snapshot,
        tmp_path / "snap",
        workload.repository,
        queries=queries,
        result=result,
        substrate=workload.objective.substrate(),
    )


def test_serving_warm_start_speedup_and_identical(snapshot):
    """The acceptance check: byte-identity always, warm ≥ 3× over cold.

    Both sides simulate a restarted process on the standard repository
    sweep (full default workload at δ = 0.35): each builds its own fresh
    objective/substrate, then either loads the snapshot (warm) or
    re-matches everything (cold).  Two trials per side, best total taken
    (standard single-shot noise reduction); measured headroom is well
    above 10×, 3 is the floor we assert.  Byte-identity of the restored
    answer sets against both the snapshot's recorded answers and the
    cold re-match runs unconditionally; the wall-clock comparison is
    skipped when ``BENCH_TIMING_ASSERTS=0`` (CI's setting).
    """
    root, expected = snapshot
    warm_seconds = []
    cold_seconds = []
    for _trial in range(2):
        # workload construction (the process's own configuration) is
        # excluded from both windows: only the restart work is timed
        warm_workload, _ = _fresh_setup()
        started = perf_counter()
        warm_answers = _warm_start(root, warm_workload)
        warm_seconds.append(perf_counter() - started)
        cold_workload, cold_queries = _fresh_setup()
        started = perf_counter()
        cold_answers = _cold_start(cold_workload, cold_queries)
        cold_seconds.append(perf_counter() - started)
        assert _canonical(warm_answers) == expected
        assert _canonical(cold_answers) == expected
    if os.environ.get("BENCH_TIMING_ASSERTS", "1") != "0":
        warm = min(warm_seconds)
        cold = min(cold_seconds)
        assert cold >= 3.0 * warm, (
            f"warm start ({warm:.3f}s) is not ≥3x faster than cold start "
            f"({cold:.3f}s) on the standard repository sweep"
        )

"""Benches for the extended ablations (top-N, estimators, tuning,
confidence)."""

from repro.experiments import run_experiment


def test_abl_topn(benchmark, warmed_bundle, record_figure):
    result = benchmark(run_experiment, "abl-topn", None)
    record_figure(result)
    for table in result.tables:
        ns = [row[0] for row in table.rows]
        assert ns == sorted(ns)


def test_abl_estimators(benchmark, warmed_bundle, record_figure):
    result = benchmark(run_experiment, "abl-estimators", None)
    record_figure(result)
    assert all(row[4] == "yes" for row in result.tables[0].rows)


def test_abl_tuning(benchmark, warmed_bundle, record_figure):
    result = benchmark.pedantic(
        run_experiment, args=("abl-tuning", None), rounds=1, iterations=1
    )
    record_figure(result)
    taus = dict(result.tables[1].rows)
    assert taus["random-curve expectation"] > 0


def test_abl_confidence(benchmark, warmed_bundle, record_figure):
    result = benchmark.pedantic(
        run_experiment, args=("abl-confidence", None), rounds=1, iterations=1
    )
    record_figure(result)
    for row in result.tables[0].rows:
        assert row[5] >= 8 / 9 - 1e-9


def test_abl_macro(benchmark, warmed_bundle, record_figure):
    result = benchmark.pedantic(
        run_experiment, args=("abl-macro", None), rounds=1, iterations=1
    )
    record_figure(result)
    assert any("violations: 0" in note for note in result.notes)

"""Benchmarks of the distributed layer: socket workers and replica groups.

What ``BENCH_distributed.json`` tracks across commits:

* ``test_bench_serial_sweep`` — the single-process baseline the remote
  numbers are read against;
* ``test_bench_remote_sweep_warm`` — the same sweep fanned out to two
  in-process socket workers with state already installed: the steady-
  state cost of the wire (framing, pickling units and results) once
  the one-shot install has been paid;
* ``test_bench_remote_install`` — that one-shot cost: fresh workers,
  full inline state install, then the sweep;
* ``test_bench_remote_recovery`` — the same cold sweep with one worker
  crashing on its first unit: the coordinator detects the loss, opens
  the breaker, re-enqueues the dropped unit, and the survivor absorbs
  the sweep.  Read against ``test_bench_remote_install``: the gap is
  the price of recovering from a mid-sweep worker death;
* ``test_bench_replica_delta_apply`` — a 2-replica group applying one
  churn delta through the replicated log (two service applies plus two
  digest checks per record).

As everywhere: byte-identity against the serial path is asserted
unconditionally inside every benchmark body;
``test_distributed_byte_identity_and_overhead`` adds the acceptance
check, whose wall-clock half is skipped when
``BENCH_TIMING_ASSERTS=0`` (CI's setting).
"""

import asyncio
import os
import socket
from time import perf_counter

from repro.errors import TransportError
from repro.evaluation import build_workload, small_config
from repro.matching import (
    ExhaustiveMatcher,
    RemoteShardExecutor,
    SerialExecutor,
    WorkerServer,
    canonical_answers,
    replica_group,
)
from repro.schema import churn_delta

_DELTA_MAX = 0.3
_SHARDS = 4


def _setup():
    workload = build_workload(small_config())
    queries = [scenario.query for scenario in workload.suite.scenarios]
    return workload, queries


def _sweep(workload, queries, executor):
    matcher = ExhaustiveMatcher(workload.objective)
    return matcher.batch_match(
        queries,
        workload.repository,
        _DELTA_MAX,
        cache=False,
        shards=_SHARDS,
        executor=executor,
    )


def _serial_reference(workload, queries):
    return canonical_answers(_sweep(workload, queries, SerialExecutor()))


def test_bench_serial_sweep(benchmark):
    workload, queries = _setup()
    expected = _serial_reference(workload, queries)

    def serial():
        answers = _sweep(workload, queries, SerialExecutor())
        assert canonical_answers(answers) == expected

    benchmark.pedantic(serial, rounds=3, iterations=1)


def test_bench_remote_sweep_warm(benchmark):
    """Steady state: installed workers, only units and results on the wire."""
    workload, queries = _setup()
    expected = _serial_reference(workload, queries)
    workers = [WorkerServer().start() for _ in range(2)]
    try:
        executor = RemoteShardExecutor([w.address for w in workers])
        _sweep(workload, queries, executor)  # pay the install once

        def remote():
            answers = _sweep(workload, queries, executor)
            assert canonical_answers(answers) == expected

        benchmark.pedantic(remote, rounds=3, iterations=1)
        assert all(w.stats.installs == 1 for w in workers)
    finally:
        for worker in workers:
            worker.stop()


def test_bench_remote_install(benchmark):
    """Cold path: fresh workers, one-shot inline install, then the sweep."""
    workload, queries = _setup()
    expected = _serial_reference(workload, queries)

    def setup():
        return ([WorkerServer().start() for _ in range(2)],), {}

    def install_and_sweep(workers):
        try:
            executor = RemoteShardExecutor([w.address for w in workers])
            answers = _sweep(workload, queries, executor)
            assert canonical_answers(answers) == expected
        finally:
            for worker in workers:
                worker.stop()

    benchmark.pedantic(install_and_sweep, setup=setup, rounds=3, iterations=1)


class _CrashOnFirstUnitWorker(WorkerServer):
    """Dies abruptly — listener and every connection — on its first unit.

    The coordinator sent the unit and never hears back: the connection
    drops mid-conversation, exactly like ``kill -9`` on a remote worker
    between request and reply.
    """

    def _run(self, message):
        self._stopping.set()
        self._close_listener()
        with self._lock:
            connections = list(self._connections)
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            conn.close()
        raise TransportError("injected crash mid-sweep")


def test_bench_remote_recovery(benchmark):
    """Mid-sweep worker death: detect, open the breaker, re-run, finish.

    One of the two workers crashes on its first unit; the sweep must
    still complete byte-identically on the survivor.  The number to
    watch is this benchmark minus ``test_bench_remote_install`` — the
    recovery-time overhead of a mid-sweep worker loss.
    """
    workload, queries = _setup()
    expected = _serial_reference(workload, queries)

    def setup():
        crasher = _CrashOnFirstUnitWorker().start()
        survivor = WorkerServer().start()
        executor = RemoteShardExecutor([crasher.address, survivor.address])
        return (crasher, survivor, executor), {}

    def recover(crasher, survivor, executor):
        try:
            answers = _sweep(workload, queries, executor)
            assert canonical_answers(answers) == expected
            assert executor.worker_health(crasher.address).state == "open"
        finally:
            crasher.stop()
            survivor.stop()

    benchmark.pedantic(recover, setup=setup, rounds=3, iterations=1)


def test_bench_replica_delta_apply(benchmark):
    """A 2-replica round: start, retain the queries, replicate one delta.

    One coroutine per round — the services' asyncio primitives bind to
    the loop they first run on, so every step shares one ``asyncio.run``.
    The delta apply is the interesting part: two service re-matches of
    the retained queries plus two digest checks through the log.
    """
    workload, queries = _setup()

    def replica_round():
        async def scenario():
            group = replica_group(
                "exhaustive", workload.objective, 2, _DELTA_MAX, cache=False
            )
            await group.start(workload.repository)
            for query in queries:
                await group.match(query)  # retain, so the apply re-matches
            await group.apply_delta(
                churn_delta(group.repository, churn=0.25, seed=0)
            )
            assert group.current_replicas() == [0, 1]
            await group.stop()

        asyncio.run(scenario())

    benchmark.pedantic(replica_round, rounds=3, iterations=1)


def test_distributed_byte_identity_and_overhead():
    """Acceptance: remote and replicated answers are byte-identical to
    serial; a warm remote sweep stays within an order-of-magnitude
    envelope of the serial baseline.

    Byte-identity runs unconditionally — across two socket workers
    (warm and cold install), across a sweep that loses a worker to a
    mid-sweep crash, and across both replicas of a group before and
    after a delta.  The wall-clock envelopes (warm remote ≤ 25× the
    serial sweep; crash recovery ≤ 10× the healthy cold sweep — both
    generous: the wire costs framing and pickling, not matching) are
    skipped when ``BENCH_TIMING_ASSERTS=0``.
    """
    workload, queries = _setup()
    expected = _serial_reference(workload, queries)

    workers = [WorkerServer().start() for _ in range(2)]
    try:
        executor = RemoteShardExecutor([w.address for w in workers])
        started = perf_counter()
        assert canonical_answers(_sweep(workload, queries, executor)) == expected
        cold_seconds = perf_counter() - started
        started = perf_counter()
        warm = _sweep(workload, queries, executor)
        remote_seconds = perf_counter() - started
        assert canonical_answers(warm) == expected
    finally:
        for worker in workers:
            worker.stop()

    # Recovery: one worker crashes on its first unit; the sweep still
    # completes byte-identically on the survivor and the dead address's
    # breaker ends the sweep open.
    crasher = _CrashOnFirstUnitWorker().start()
    survivor = WorkerServer().start()
    try:
        executor = RemoteShardExecutor([crasher.address, survivor.address])
        started = perf_counter()
        recovered = _sweep(workload, queries, executor)
        recovery_seconds = perf_counter() - started
        assert canonical_answers(recovered) == expected
        assert executor.worker_health(crasher.address).state == "open"
        assert executor.stats.breaker_opens >= 1
    finally:
        crasher.stop()
        survivor.stop()

    started = perf_counter()
    serial = _sweep(workload, queries, SerialExecutor())
    serial_seconds = perf_counter() - started
    assert canonical_answers(serial) == expected

    async def replicated():
        group = replica_group(
            "exhaustive", workload.objective, 2, _DELTA_MAX, cache=False
        )
        await group.start(workload.repository)
        waves = [[await group.match_all(q) for q in queries]]
        await group.apply_delta(churn_delta(group.repository, 0.25, seed=0))
        waves.append([await group.match_all(q) for q in queries])
        repositories = [workload.repository, group.repository]
        await group.stop()
        return waves, repositories

    waves, repositories = asyncio.run(replicated())
    matcher = ExhaustiveMatcher(workload.objective)
    for wave, repository in zip(waves, repositories):
        offline = canonical_answers(
            matcher.batch_match(queries, repository, _DELTA_MAX, cache=False)
        )
        for replica in range(2):
            served = canonical_answers([a[replica] for a in wave])
            assert served == offline

    if os.environ.get("BENCH_TIMING_ASSERTS", "1") != "0":
        assert remote_seconds <= 25.0 * max(serial_seconds, 0.01), (
            f"warm remote sweep ({remote_seconds:.3f}s) is far outside the "
            f"expected envelope of serial ({serial_seconds:.3f}s)"
        )
        # A crash is an EOF, detected immediately — recovery costs one
        # re-run unit plus breaker bookkeeping, not a timeout wait.
        assert recovery_seconds <= 10.0 * max(cold_seconds, 0.05), (
            f"crash-recovery sweep ({recovery_seconds:.3f}s) is far outside "
            f"the expected envelope of the healthy cold sweep "
            f"({cold_seconds:.3f}s) — recovery is stalling, not re-running"
        )

"""Bench fig12: bounds from an interpolated input curve with guessed |H|."""

from repro.experiments import run_experiment


def test_fig12_interpolated_input(benchmark, warmed_bundle, record_figure):
    result = benchmark(run_experiment, "fig12", None)
    record_figure(result)
    summary = result.tables[-1].rows
    assert len(summary) == 3
    # Band widths stay bounded and modest.  Containment violations are
    # reported but not asserted tightly: the 11-point interpolation's
    # max-rule misstates the counts at the tightest thresholds, which is
    # precisely the accuracy loss the paper's section 4.1 discusses.
    for row in summary:
        assert 0 <= row[2] <= 0.5

"""Bench fig06: 11-point interpolated P/R curve of S1."""

from repro.experiments import run_experiment


def test_fig06_interpolated_pr_curve(benchmark, warmed_bundle, record_figure):
    result = benchmark(run_experiment, "fig06", None)
    record_figure(result)
    precisions = [row[1] for row in result.tables[0].rows]
    assert len(precisions) == 11
    assert all(a >= b for a, b in zip(precisions, precisions[1:]))

"""Bench fig10: answer-size-ratio curves of the two improvements.

Shape expectations from the paper: S2-one (beam) declines smoothly from
1; S2-two (clustering) is markedly more aggressive while retaining the
best-scoring answers.
"""

from repro.experiments import run_experiment


def test_fig10_size_ratio_curves(benchmark, warmed_bundle, record_figure):
    result = benchmark(run_experiment, "fig10", None)
    record_figure(result)
    beam_rows = result.tables[0].rows
    clustering_rows = result.tables[1].rows
    # both retain the top of the ranking
    assert beam_rows[0][3] >= 0.9
    assert clustering_rows[0][3] >= 0.9
    # clustering ends up far more aggressive
    assert clustering_rows[-1][3] < beam_rows[-1][3]

"""Benchmarks of the repository scoring kernel and the flattened search.

The innermost loops under every published benchmark are (a) building
per-(query, schema) score matrices and (b) the per-schema branch-and-
bound.  This PR rewrote both: matrices gather from the
:class:`~repro.matching.similarity.kernel.CostKernel`'s interned
label-universe cost rows (one cost per distinct label pair per
*repository*, not per pair), the exhaustive search runs as a flattened
explicit-stack loop over bitmasks and precomputed ancestor bitsets, and
the clustering matchers share one interned cluster build per repository.

The headline contract — ``test_kernel_sweep_speedup_and_identical`` —
replays the standard matcher × threshold repository sweep on a
repository-scale workload twice: once on the PR-4 scoring path (kernel
off, recursive reference search — the exact code paths kept behind
:func:`~repro.matching.similarity.kernel.kernel_disabled` and
:func:`~repro.matching.engine.flat_search_disabled`) and once on the
kernel path, asserting **byte-identical answers always** and **≥ 2×**
wall clock (measured ~2.8× on a quiet core; the timing half is skipped
when ``BENCH_TIMING_ASSERTS=0`` — CI's setting — per the convention in
``benchmarks/README.md``).

The micro benches time the new primitives directly: kernel
construction, row materialisation, matrix gather vs. direct build, the
flat vs. recursive search, and interned vs. scan clustering — their
relative means in ``BENCH_kernel.json`` track the same contracts across
commits.
"""

import gc
import os
from time import perf_counter

import pytest

from repro.evaluation import build_workload
from repro.evaluation.workloads import WorkloadConfig
from repro.matching import (
    BeamMatcher,
    ClusteringMatcher,
    CostKernel,
    ExhaustiveMatcher,
    HybridMatcher,
    SchemaSearch,
    ScoreMatrix,
    TopKCandidateMatcher,
    canonical_answers,
    flat_search_disabled,
    kernel_disabled,
    numpy_available,
    numpy_disabled,
    set_numpy_enabled,
    substrate_disabled,
)
from repro.matching.clustering import ElementClusterer

#: the contract workload: repository-scale, where the paper's premise
#: (the repository dwarfs the query) holds and the kernel's
#: per-repository amortisation has something to amortise over
_CONTRACT_CONFIG = WorkloadConfig(
    num_schemas=260,
    min_schema_size=10,
    max_schema_size=24,
    num_queries=10,
    query_size=5,
)
#: matcher × threshold grid of the contract sweep; 0.4 is the
#: search-heavy regime where the branch-and-bound dominates wall clock
_CONTRACT_THRESHOLDS = (0.2, 0.3, 0.4)


def _sweep_matchers(objective):
    return [
        ExhaustiveMatcher(objective),
        BeamMatcher(objective, beam_width=8),
        ClusteringMatcher(objective, clusters_per_element=2),
        TopKCandidateMatcher(objective, candidates_per_element=4),
        HybridMatcher(objective, clusters_per_element=3, beam_width=8),
    ]


def _repository_sweep(workload, thresholds):
    """Every matcher × threshold × query over the repository."""
    results = []
    for matcher in _sweep_matchers(workload.objective):
        for delta in thresholds:
            for scenario in workload.suite.scenarios:
                results.append(
                    matcher.match(scenario.query, workload.repository, delta)
                )
    return results


# -- kernel primitives -------------------------------------------------------

def test_bench_kernel_build(benchmark, warmed_bundle):
    """Interning the repository label universe (no similarity work)."""
    workload = warmed_bundle.workload
    benchmark(CostKernel, workload.objective, workload.repository)


def test_bench_kernel_row(benchmark, warmed_bundle):
    """One cold cost row against the whole universe (then cached)."""
    workload = warmed_bundle.workload
    kernel = CostKernel(workload.objective, workload.repository)
    element = workload.suite.scenarios[0].query.element(0)

    def cold_row():
        kernel._rows.clear()
        kernel._gathers.clear()
        return kernel.row(element.name, element.datatype)

    benchmark(cold_row)


def test_bench_matrix_gather(benchmark, warmed_bundle):
    """Matrix construction as a kernel gather (rows pre-materialised)."""
    workload = warmed_bundle.workload
    kernel = CostKernel(workload.objective, workload.repository)
    query = workload.suite.scenarios[0].query
    schema = workload.repository.schemas()[0]
    ScoreMatrix.build(workload.objective, query, schema, kernel=kernel)

    benchmark(
        ScoreMatrix.build, workload.objective, query, schema, None, kernel
    )


def test_bench_matrix_direct(benchmark, warmed_bundle):
    """The pre-kernel baseline: one cost per distinct pair per matrix."""
    workload = warmed_bundle.workload
    query = workload.suite.scenarios[0].query
    schema = workload.repository.schemas()[0]
    benchmark(ScoreMatrix.build, workload.objective, query, schema)


def _search_heavy_pair(workload):
    """The workload's biggest per-schema search: largest schema, high δ.

    The flat loop's advantage over the recursive generator grows with
    expansions and emissions (every recursive emission bubbles through
    one ``yield from`` frame per query element), so the micro pair is
    measured where the search actually works.
    """
    query = workload.suite.scenarios[0].query
    schema = max(workload.repository.schemas(), key=len)
    return query, schema


def test_bench_exhaustive_flat(benchmark, warmed_bundle):
    """The flattened explicit-stack branch-and-bound, search-heavy δ."""
    workload = warmed_bundle.workload
    query, schema = _search_heavy_pair(workload)
    substrate = workload.objective.substrate()

    def run():
        search = SchemaSearch(
            query, schema, workload.objective, substrate=substrate
        )
        return list(search.exhaustive(0.45))

    benchmark(run)


def test_bench_exhaustive_reference(benchmark, warmed_bundle):
    """The recursive reference generator on the identical search."""
    workload = warmed_bundle.workload
    query, schema = _search_heavy_pair(workload)
    substrate = workload.objective.substrate()

    def run():
        search = SchemaSearch(
            query, schema, workload.objective, substrate=substrate
        )
        return list(search.exhaustive_reference(0.45))

    benchmark(run)


def test_bench_cluster_interned(benchmark, warmed_bundle):
    """Greedy leader clustering over interned distinct labels."""
    workload = warmed_bundle.workload
    clusterer = ElementClusterer(workload.objective.name_similarity)
    benchmark(clusterer._cluster_interned, workload.repository)


def test_bench_cluster_scan(benchmark, warmed_bundle):
    """The reference per-element cluster scan (the PR-4 path)."""
    workload = warmed_bundle.workload
    clusterer = ElementClusterer(workload.objective.name_similarity)
    benchmark(clusterer._cluster_scan, workload.repository)


# -- the contract ------------------------------------------------------------

def _contract_arm(pre_kernel: bool, numpy_on: bool = True):
    """One timed sweep in a fresh universe; returns (answers, seconds).

    A fresh workload per arm keeps substrates, kernels and clusters
    cold, so each arm pays its own scoring work.  One warm-up sweep at a
    single threshold first heats the name-similarity memo on the direct
    path — the distinct-pair similarity computations are identical cold
    work in both arms (and threshold-independent), so warming them
    isolates the scoring-kernel difference, exactly like
    ``bench_substrate``'s contract does.  GC is paused around the timed
    region (symmetrically for both arms) so collection pauses land
    outside the single-shot measurement.
    """
    workload = build_workload(_CONTRACT_CONFIG)
    with substrate_disabled(), kernel_disabled(), flat_search_disabled():
        _repository_sweep(workload, _CONTRACT_THRESHOLDS[:1])
    previous_numpy = set_numpy_enabled(numpy_on and not pre_kernel)
    gc.collect()
    gc.disable()
    try:
        if pre_kernel:
            with kernel_disabled(), flat_search_disabled():
                started = perf_counter()
                answers = _repository_sweep(workload, _CONTRACT_THRESHOLDS)
                seconds = perf_counter() - started
        else:
            started = perf_counter()
            answers = _repository_sweep(workload, _CONTRACT_THRESHOLDS)
            seconds = perf_counter() - started
    finally:
        gc.enable()
        set_numpy_enabled(previous_numpy)
    return canonical_answers(answers), seconds


def test_kernel_sweep_numpy_axis_identical():
    """The numpy axis of the contract sweep: same bytes with the switch off.

    One full contract sweep on the kernel path with the numpy switch
    disabled must produce answer sets byte-identical to the vectorised
    run — the third axis of the A/B grid (``bench_substrate`` covers
    the substrate axis, ``test_kernel_sweep_speedup_and_identical`` the
    kernel and flat-search axes).  Identity only: the numpy timing
    contract lives in ``test_numpy_gather_sweep_speedup_and_identical``
    where the vector path's regime is actually measurable.
    """
    vector_answers, _ = _contract_arm(pre_kernel=False, numpy_on=True)
    spec_answers, _ = _contract_arm(pre_kernel=False, numpy_on=False)
    assert vector_answers == spec_answers, (
        "numpy-path answers differ from the pure-python spec path"
    )


def test_kernel_sweep_speedup_and_identical():
    """The acceptance check: ≥ 2× over the PR-4 scoring path, same bytes.

    Two full trials (fresh universes each); every trial asserts the
    kernel path's answer sets byte-identical to the pre-kernel path's,
    unconditionally.  Each side then takes its best total (standard
    single-shot noise reduction) for the wall-clock comparison; measured
    headroom is ~2.8× on a quiet core, 2 is the floor we assert.  The
    timing half is skipped when ``BENCH_TIMING_ASSERTS=0`` (set in CI,
    where shared runners make single-shot timing comparisons flaky).
    """
    kernel_seconds = []
    direct_seconds = []
    for _ in range(2):
        kernel_answers, fast = _contract_arm(pre_kernel=False)
        direct_answers, slow = _contract_arm(pre_kernel=True)
        assert kernel_answers == direct_answers, (
            "kernel-path answers differ from the pre-kernel scoring path"
        )
        kernel_seconds.append(fast)
        direct_seconds.append(slow)
    fast = min(kernel_seconds)
    slow = min(direct_seconds)
    if os.environ.get("BENCH_TIMING_ASSERTS", "1") != "0":
        assert slow >= 2.0 * fast, (
            f"kernel sweep ({fast:.3f}s) is not ≥2x faster than the "
            f"pre-kernel scoring path ({slow:.3f}s)"
        )


# -- the numpy contract ------------------------------------------------------

#: the gather-sweep contract workload: wider and deeper than the sweep
#: contract's, because the vector gather's regime is repository *breadth*
#: (schemas per batch) — one fancy-index plus one batched argsort per
#: query label replaces one python sort per (label, schema) pair
_GATHER_CONFIG = WorkloadConfig(
    num_schemas=400,
    min_schema_size=16,
    max_schema_size=40,
    num_queries=12,
    query_size=6,
)


def _gather_sweep_trial(kernel, elements, schemas, numpy_on: bool):
    """One timed cold gather sweep on the given kernel; (gathers, seconds).

    "Cold" means the gather caches are emptied first — the cost rows
    stay warm (row construction is the same python objective loop on
    both paths and both arms share the kernel), so the timed window
    isolates exactly what the numpy switch changes: gathering every
    (query element, schema) matrix row and its candidate order.  GC
    pauses land outside the window, symmetrically.
    """
    kernel._gathers.clear()
    kernel._vgathers.clear()
    previous_numpy = set_numpy_enabled(numpy_on)
    gc.collect()
    gc.disable()
    try:
        started = perf_counter()
        gathers = [
            kernel.gather(name, datatype, schema)
            for name, datatype in elements
            for schema in schemas
        ]
        seconds = perf_counter() - started
    finally:
        gc.enable()
        set_numpy_enabled(previous_numpy)
    return repr(gathers), seconds


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
def test_numpy_gather_sweep_speedup_and_identical():
    """The numpy acceptance check: ≥ 2× on the gather sweep, same bytes.

    Every (query element, schema) gather of the repository-scale
    workload — the exact cache entries every matcher's matrices are
    assembled from — must be byte-identical between the vectorised and
    the pure-python path (asserted on every trial, unconditionally, via
    ``repr`` so float bits count), and the vectorised sweep must be
    ≥ 2× faster (measured ~2.4–2.6× on a quiet core).  One shared
    universe, five interleaved cold-cache trials per arm, best trial
    each — single-shot sweeps on a loaded machine swing more than the
    contract's margin, and the minimum over interleaved trials is the
    standard way to strip that noise.  The timing half is gated by
    ``BENCH_TIMING_ASSERTS`` per the convention in
    ``benchmarks/README.md``.
    """
    workload = build_workload(_GATHER_CONFIG)
    substrate = workload.objective.substrate()
    substrate.prepare(workload.repository)
    schemas = workload.repository.schemas()
    elements = [
        (element.name, element.datatype)
        for scenario in workload.suite.scenarios
        for element in scenario.query.elements()
    ]
    kernel = substrate.kernel()
    for name, datatype in elements:
        kernel.row(name, datatype)
    vector_seconds = []
    spec_seconds = []
    for _ in range(5):
        vector_gathers, fast = _gather_sweep_trial(
            kernel, elements, schemas, numpy_on=True
        )
        spec_gathers, slow = _gather_sweep_trial(
            kernel, elements, schemas, numpy_on=False
        )
        assert vector_gathers == spec_gathers, (
            "vectorised gathers differ from the pure-python spec gathers"
        )
        vector_seconds.append(fast)
        spec_seconds.append(slow)
    fast = min(vector_seconds)
    slow = min(spec_seconds)
    if os.environ.get("BENCH_TIMING_ASSERTS", "1") != "0":
        assert slow >= 2.0 * fast, (
            f"vectorised gather sweep ({fast:.3f}s) is not ≥2x faster "
            f"than the pure-python gather path ({slow:.3f}s)"
        )

"""Microbenchmarks of the substrate layers.

Not paper figures — these quantify where the wall-clock goes (the paper's
premise: matching is the expensive part, the bound math is free) and
guard against performance regressions in the hot paths.  The similarity
substrate's headline claim — a repository sweep across matchers and
thresholds runs ≥ 1.5× faster with byte-identical answers — is asserted
here (``test_substrate_sweep_speedup_and_identical``), not assumed.
"""

import os
from time import perf_counter

from repro.core.incremental import (
    SizeProfile,
    SystemProfile,
    compute_incremental_bounds,
)
from repro.core.measures import Counts
from repro.core.thresholds import ThresholdSchedule
from repro.evaluation import build_workload
from repro.matching import (
    BeamMatcher,
    ClusteringMatcher,
    ExhaustiveMatcher,
    HybridMatcher,
    ScoreMatrix,
    TopKCandidateMatcher,
    substrate_disabled,
)
from repro.util import rng as rng_util
from repro.util.text import jaro_winkler, levenshtein, ngram_similarity


def test_bench_levenshtein(benchmark):
    benchmark(levenshtein, "tracking-number", "traking_numbre")


def test_bench_jaro_winkler(benchmark):
    benchmark(jaro_winkler, "tracking-number", "traking_numbre")


def test_bench_ngram_similarity(benchmark):
    benchmark(ngram_similarity, "tracking-number", "traking_numbre")


def test_bench_name_similarity_memoised(benchmark, warmed_bundle):
    similarity = warmed_bundle.workload.objective.name_similarity

    def run_pairs():
        total = 0.0
        for a in ("author", "writer", "policyNumber", "qty"):
            for b in ("creator", "price", "policy_number", "quantity"):
                total += similarity.similarity(a, b)
        return total

    benchmark(run_pairs)


def test_bench_exhaustive_single_query(benchmark, warmed_bundle):
    workload = warmed_bundle.workload
    matcher = ExhaustiveMatcher(workload.objective)
    query = workload.suite.scenarios[0].query
    benchmark(matcher.match, query, workload.repository, 0.3)


def test_bench_beam_single_query(benchmark, warmed_bundle):
    workload = warmed_bundle.workload
    matcher = BeamMatcher(workload.objective, beam_width=40)
    query = workload.suite.scenarios[0].query
    benchmark(matcher.match, query, workload.repository, 0.3)


def test_bench_clustering_single_query(benchmark, warmed_bundle):
    workload = warmed_bundle.workload
    matcher = ClusteringMatcher(workload.objective, clusters_per_element=3)
    matcher.prepare(workload.repository)  # clustering cost paid once
    query = workload.suite.scenarios[0].query
    benchmark(matcher.match, query, workload.repository, 0.3)


def _synthetic_profiles(thresholds: int):
    generator = rng_util.make_tagged(rng_util.seed_from(17, thresholds))
    schedule = ThresholdSchedule.linear(0.01, 1.0, thresholds)
    answers = correct = improved = 0
    counts = []
    sizes = []
    for _ in range(thresholds):
        grow = generator.randint(1, 40)
        good = generator.randint(0, grow)
        answers += grow
        correct += good
        improved += generator.randint(0, grow)
        counts.append((answers, correct))
        sizes.append(improved)
    relevant = 2 * correct
    profile = SystemProfile(
        schedule, tuple(Counts(a, t, relevant) for a, t in counts)
    )
    return profile, SizeProfile(schedule, tuple(sizes))


def test_bench_incremental_bounds_1000_thresholds(benchmark):
    profile, sizes = _synthetic_profiles(1000)
    benchmark(compute_incremental_bounds, profile, sizes)


def test_bench_judging_profile(benchmark, warmed_bundle):
    workload = warmed_bundle.workload
    answers = warmed_bundle.original.answers
    truth = workload.suite.ground_truth.mappings
    benchmark(
        SystemProfile.from_answer_set, workload.schedule, answers, truth
    )


# -- similarity substrate ----------------------------------------------------

def test_bench_score_matrix_build(benchmark, warmed_bundle):
    """Cold matrix construction for one (query, schema) pair."""
    workload = warmed_bundle.workload
    query = workload.suite.scenarios[0].query
    schema = workload.repository.schemas()[0]
    benchmark(ScoreMatrix.build, workload.objective, query, schema)


def test_bench_substrate_matrix_cached(benchmark, warmed_bundle):
    """Warm matrix lookup — the per-search cost the substrate leaves."""
    workload = warmed_bundle.workload
    substrate = workload.objective.substrate()
    query = workload.suite.scenarios[0].query
    schema = workload.repository.schemas()[0]
    substrate.matrix(query, schema)  # ensure it is cached
    benchmark(substrate.matrix, query, schema)


def _sweep_matchers(objective):
    return [
        ExhaustiveMatcher(objective),
        BeamMatcher(objective, beam_width=8),
        ClusteringMatcher(objective, clusters_per_element=2),
        TopKCandidateMatcher(objective, candidates_per_element=4),
        HybridMatcher(objective, clusters_per_element=3, beam_width=8),
    ]


_SWEEP_THRESHOLDS = (0.1, 0.15, 0.2, 0.25, 0.3)


def _repository_sweep(workload):
    """Every matcher × threshold × query over the repository — the
    workload shape of ``compare`` runs and the figure experiments."""
    results = []
    for matcher in _sweep_matchers(workload.objective):
        for delta in _SWEEP_THRESHOLDS:
            for scenario in workload.suite.scenarios:
                results.append(
                    matcher.match(scenario.query, workload.repository, delta)
                )
    return results


def _canonical_sets(answer_sets) -> bytes:
    return repr(
        [
            [(answer.item.key, answer.score) for answer in a.answers()]
            for a in answer_sets
        ]
    ).encode()


def test_bench_repository_sweep_direct(benchmark, warmed_bundle):
    workload = warmed_bundle.workload

    def direct():
        with substrate_disabled():
            return _repository_sweep(workload)

    benchmark.pedantic(direct, rounds=2, iterations=1)


def test_bench_repository_sweep_substrate(benchmark, warmed_bundle):
    workload = warmed_bundle.workload
    benchmark.pedantic(
        _repository_sweep, args=(workload,), rounds=2, iterations=1
    )


def test_substrate_sweep_speedup_and_identical():
    """The acceptance check: ≥ 1.5× on the repository sweep, same bytes.

    A fresh full workload (fresh objective, cold substrate) so the
    comparison is honest: one warm-up sweep runs with the substrate off
    to heat the name-similarity memo both paths share, then the direct
    path and the substrate path are timed on identical work.  Measured
    headroom is ~3× on a laptop-class core; 1.5 is the floor we assert.

    Byte-identity is always asserted; the wall-clock comparison is
    skipped when ``BENCH_TIMING_ASSERTS=0`` (set in CI, where shared
    runners make single-shot timing comparisons flaky).
    """
    workload = build_workload(None)
    with substrate_disabled():
        _repository_sweep(workload)  # warm the shared similarity memo

        started = perf_counter()
        direct = _repository_sweep(workload)
        direct_seconds = perf_counter() - started

    started = perf_counter()
    substrate = _repository_sweep(workload)
    substrate_seconds = perf_counter() - started

    assert _canonical_sets(direct) == _canonical_sets(substrate)
    if os.environ.get("BENCH_TIMING_ASSERTS", "1") != "0":
        assert direct_seconds >= 1.5 * substrate_seconds, (
            f"substrate sweep ({substrate_seconds:.3f}s) is not ≥1.5× faster "
            f"than the direct sweep ({direct_seconds:.3f}s)"
        )

"""Microbenchmarks of the substrate layers.

Not paper figures — these quantify where the wall-clock goes (the paper's
premise: matching is the expensive part, the bound math is free) and
guard against performance regressions in the hot paths.
"""

from repro.core.incremental import (
    SizeProfile,
    SystemProfile,
    compute_incremental_bounds,
)
from repro.core.measures import Counts
from repro.core.thresholds import ThresholdSchedule
from repro.matching import BeamMatcher, ClusteringMatcher, ExhaustiveMatcher
from repro.util import rng as rng_util
from repro.util.text import jaro_winkler, levenshtein, ngram_similarity


def test_bench_levenshtein(benchmark):
    benchmark(levenshtein, "tracking-number", "traking_numbre")


def test_bench_jaro_winkler(benchmark):
    benchmark(jaro_winkler, "tracking-number", "traking_numbre")


def test_bench_ngram_similarity(benchmark):
    benchmark(ngram_similarity, "tracking-number", "traking_numbre")


def test_bench_name_similarity_memoised(benchmark, warmed_bundle):
    similarity = warmed_bundle.workload.objective.name_similarity

    def run_pairs():
        total = 0.0
        for a in ("author", "writer", "policyNumber", "qty"):
            for b in ("creator", "price", "policy_number", "quantity"):
                total += similarity.similarity(a, b)
        return total

    benchmark(run_pairs)


def test_bench_exhaustive_single_query(benchmark, warmed_bundle):
    workload = warmed_bundle.workload
    matcher = ExhaustiveMatcher(workload.objective)
    query = workload.suite.scenarios[0].query
    benchmark(matcher.match, query, workload.repository, 0.3)


def test_bench_beam_single_query(benchmark, warmed_bundle):
    workload = warmed_bundle.workload
    matcher = BeamMatcher(workload.objective, beam_width=40)
    query = workload.suite.scenarios[0].query
    benchmark(matcher.match, query, workload.repository, 0.3)


def test_bench_clustering_single_query(benchmark, warmed_bundle):
    workload = warmed_bundle.workload
    matcher = ClusteringMatcher(workload.objective, clusters_per_element=3)
    matcher.prepare(workload.repository)  # clustering cost paid once
    query = workload.suite.scenarios[0].query
    benchmark(matcher.match, query, workload.repository, 0.3)


def _synthetic_profiles(thresholds: int):
    generator = rng_util.make_tagged(rng_util.seed_from(17, thresholds))
    schedule = ThresholdSchedule.linear(0.01, 1.0, thresholds)
    answers = correct = improved = 0
    counts = []
    sizes = []
    for _ in range(thresholds):
        grow = generator.randint(1, 40)
        good = generator.randint(0, grow)
        answers += grow
        correct += good
        improved += generator.randint(0, grow)
        counts.append((answers, correct))
        sizes.append(improved)
    relevant = 2 * correct
    profile = SystemProfile(
        schedule, tuple(Counts(a, t, relevant) for a, t in counts)
    )
    return profile, SizeProfile(schedule, tuple(sizes))


def test_bench_incremental_bounds_1000_thresholds(benchmark):
    profile, sizes = _synthetic_profiles(1000)
    benchmark(compute_incremental_bounds, profile, sizes)


def test_bench_judging_profile(benchmark, warmed_bundle):
    workload = warmed_bundle.workload
    answers = warmed_bundle.original.answers
    truth = workload.suite.ground_truth.mappings
    benchmark(
        SystemProfile.from_answer_set, workload.schedule, answers, truth
    )

"""Benchmark fixtures.

Each figure bench (a) times the experiment's analysis on the full default
workload and (b) writes the rendered figure output — the tables and ASCII
plots a reader compares against the paper — to ``benchmarks/results/``.

The expensive matching runs are shared through the harness's in-process
cache; a session-scoped fixture warms it so benchmark timings measure the
*analysis* (the paper's contribution), not repository generation.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def warmed_bundle():
    """Run all systems on the default workload once (cached thereafter)."""
    from repro.experiments.harness import base_runs

    return base_runs(None)


@pytest.fixture(scope="session")
def record_figure():
    """Persist an experiment's rendered output under benchmarks/results/."""

    def _record(result):
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{result.experiment_id}.txt"
        path.write_text(result.render() + "\n", encoding="utf-8")
        return result

    return _record

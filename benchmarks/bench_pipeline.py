"""Pipeline benchmarks: serial matching vs. the sharded, cached pipeline.

The pipeline's pitch is that repeated multi-query workloads (top-n
sweeps, threshold sweeps, figure reruns) stop recomputing identical
per-(query, schema) searches.  These benches measure that claim instead
of asserting it — a three-pass sweep serially with no cache, then the
same sweep through the pipeline with two workers and a candidate cache —
and verify the two produce byte-identical answer sets.
"""

from __future__ import annotations

import os
from time import perf_counter

import pytest

from repro.evaluation import build_workload, small_config
from repro.matching import CandidateCache, ExhaustiveMatcher, canonical_answers

SWEEP_PASSES = 3
WORKERS = 2


@pytest.fixture(scope="module")
def sweep_setup():
    workload = build_workload(small_config())
    queries = [scenario.query for scenario in workload.suite.scenarios]
    return workload, queries, workload.schedule.final


def _serial_sweep(workload, queries, delta):
    matcher = ExhaustiveMatcher(workload.objective)
    last = None
    for _ in range(SWEEP_PASSES):
        last = matcher.batch_match(
            queries, workload.repository, delta, workers=1, cache=False
        )
    return last


def _pipelined_sweep(workload, queries, delta):
    matcher = ExhaustiveMatcher(workload.objective)
    cache = CandidateCache(maxsize=100_000)
    last = None
    for _ in range(SWEEP_PASSES):
        last = matcher.batch_match(
            queries, workload.repository, delta, workers=WORKERS, cache=cache
        )
    return last


def _canonical(answer_sets) -> list:
    return canonical_answers(answer_sets)  # the one shared definition


def test_bench_serial_sweep(benchmark, sweep_setup):
    workload, queries, delta = sweep_setup
    benchmark.pedantic(
        _serial_sweep, args=(workload, queries, delta), rounds=3, iterations=1
    )


def test_bench_pipelined_sweep(benchmark, sweep_setup):
    workload, queries, delta = sweep_setup
    benchmark.pedantic(
        _pipelined_sweep, args=(workload, queries, delta), rounds=3, iterations=1
    )


def test_pipeline_beats_serial_and_is_byte_identical():
    """The acceptance check: faster with >= 2 workers, identical bytes.

    Measured on the full default workload (the small one finishes in
    milliseconds once the name-similarity memo is warm, which would let
    process startup dominate).  One warm-up pass runs first so both
    contenders see the same memoised similarity state.
    """
    workload = build_workload(None)
    queries = [scenario.query for scenario in workload.suite.scenarios]
    delta = workload.schedule.final
    warmup = ExhaustiveMatcher(workload.objective)
    warmup.batch_match(queries, workload.repository, delta, workers=1, cache=False)

    started = perf_counter()
    serial = _serial_sweep(workload, queries, delta)
    serial_seconds = perf_counter() - started

    started = perf_counter()
    pipelined = _pipelined_sweep(workload, queries, delta)
    pipelined_seconds = perf_counter() - started

    assert _canonical(serial) == _canonical(pipelined)
    # wall-clock comparison is skippable in CI (BENCH_TIMING_ASSERTS=0):
    # single-shot timings on shared runners are inherently flaky
    if os.environ.get("BENCH_TIMING_ASSERTS", "1") != "0":
        assert pipelined_seconds < serial_seconds, (
            f"sharded+cached sweep ({pipelined_seconds:.3f}s) did not beat "
            f"the serial sweep ({serial_seconds:.3f}s)"
        )

"""Benchmarks of the repository-evolution subsystem.

The headline contract of incremental re-matching
(:mod:`repro.matching.evolution`): after a repository delta, the
re-match is **byte-identical** to a cold full re-match — always — and at
low churn it is much cheaper, because per-pair results (and whole
answer sets) are reused for untouched schemas and the static admissible
bound skips provably empty searches against new ones.
``test_evolution_incremental_speedup_and_identical`` asserts ≥ 2× over
cold re-match at ≤ 10 % churn (measured ~3×; byte-identity is asserted
unconditionally, the wall-clock half is skipped when
``BENCH_TIMING_ASSERTS=0`` — CI's setting, where shared runners make
single-shot timings flaky).

The micro benches time the delta primitives themselves (churn-delta
derivation + application, schema-granular token-index refresh), and the
``test_bench_rematch_*`` pair replays the contract's 5 %-churn stream
incrementally vs cold, so their relative means in
``BENCH_evolution.json`` track the same ≥2× contract across commits.
"""

import os
from time import perf_counter

from repro.evaluation import build_workload
from repro.matching import (
    EvolutionSession,
    ExhaustiveMatcher,
    MatchingPipeline,
    canonical_answers,
)
from repro.matching.similarity.matrix import TokenIndex
from repro.schema import churn_delta

_DELTA_MAX = 0.35
#: the benchmark churn point — 5 % of schemas touched per step, i.e. the
#: "≤ 10 % churn" regime where the incremental contract is asserted
_CHURN = 0.05


def _canonical(answer_sets) -> list:
    return canonical_answers(answer_sets)  # the one shared definition


# -- delta primitives --------------------------------------------------------

def test_bench_churn_delta_derivation(benchmark, warmed_bundle):
    repository = warmed_bundle.workload.repository
    benchmark(churn_delta, repository, _CHURN, 7)


def test_bench_delta_apply(benchmark, warmed_bundle):
    repository = warmed_bundle.workload.repository
    delta = churn_delta(repository, _CHURN, 7)
    benchmark(lambda: repository.apply(delta))


def test_bench_token_index_incremental_refresh(benchmark, warmed_bundle):
    """Schema-granular invalidation: re-index after a churn delta."""
    repository = warmed_bundle.workload.repository
    previous = TokenIndex(repository)
    evolved, _ = repository.apply(churn_delta(repository, _CHURN, 7))
    refreshed = TokenIndex(evolved, previous=previous)
    assert refreshed.reused_schemas >= len(evolved) - round(
        _CHURN * len(repository)
    )
    benchmark(TokenIndex, evolved, previous)


def test_bench_token_index_cold_rebuild(benchmark, warmed_bundle):
    """The baseline the incremental refresh is saving against."""
    repository = warmed_bundle.workload.repository
    evolved, _ = repository.apply(churn_delta(repository, _CHURN, 7))
    benchmark(TokenIndex, evolved)


# -- incremental re-matching -------------------------------------------------

def _fresh_setup():
    """A fresh full workload with a cold objective/substrate."""
    workload = build_workload(None)
    queries = [scenario.query for scenario in workload.suite.scenarios]
    return workload, queries


_STREAM_STEPS = 6


def _stream_deltas(repository):
    """The benchmark churn stream: 6 deltas at 5 % over evolving versions."""
    deltas = []
    for step in range(_STREAM_STEPS):
        delta = churn_delta(repository, _CHURN, seed=step)
        repository, _ = repository.apply(delta)
        deltas.append(delta)
    return deltas


def test_bench_rematch_incremental(benchmark):
    """Replay the churn stream through an EvolutionSession (single-shot).

    Fresh universes per round (pedantic setup), because a delta arrives
    once in production: each step pays its own matrix builds for changed
    schemas, exactly like the cold counterpart below — the two means'
    ratio in ``BENCH_evolution.json`` is the incremental contract.
    """

    def setup():
        workload, queries = _fresh_setup()
        session = EvolutionSession(
            ExhaustiveMatcher(workload.objective), queries, _DELTA_MAX,
            cache=False,
        )
        session.match(workload.repository)
        return (session, _stream_deltas(workload.repository)), {}

    def replay(session, deltas):
        for delta in deltas:
            session.apply(delta)

    benchmark.pedantic(replay, setup=setup, rounds=2, iterations=1)


def test_bench_rematch_cold(benchmark):
    """The same churn stream, re-matched cold at every step."""

    def setup():
        workload, queries = _fresh_setup()
        pipeline = MatchingPipeline(
            ExhaustiveMatcher(workload.objective), cache=False
        )
        pipeline.run(queries, workload.repository, _DELTA_MAX)
        versions = []
        repository = workload.repository
        for delta in _stream_deltas(workload.repository):
            repository, _ = repository.apply(delta)
            versions.append(repository)
        return (pipeline, queries, versions), {}

    def replay(pipeline, queries, versions):
        for repository in versions:
            pipeline.run(queries, repository, _DELTA_MAX)

    benchmark.pedantic(replay, setup=setup, rounds=2, iterations=1)


def _stream_trial(churn: float, steps: int, delta_max: float):
    """One full replay: two content-identical universes, one churn stream.

    Universe A replays the stream through an :class:`EvolutionSession`
    (incremental); universe B re-runs a cold pipeline on every evolved
    version.  Separate workloads (hence separate objectives/substrates)
    keep the comparison honest: each universe pays its own score-matrix
    builds for delta-changed schemas, both are substrate-warm from their
    own baseline, both cache-free.  Byte-identity is asserted per step;
    returns the two aggregate wall-clock totals.
    """
    workload_a, queries_a = _fresh_setup()
    session = EvolutionSession(
        ExhaustiveMatcher(workload_a.objective), queries_a, delta_max,
        cache=False,
    )
    session.match(workload_a.repository)
    workload_b, queries_b = _fresh_setup()
    cold_pipeline = MatchingPipeline(
        ExhaustiveMatcher(workload_b.objective), cache=False
    )
    cold_pipeline.run(queries_b, workload_b.repository, delta_max)
    repository_b = workload_b.repository

    incremental_seconds = cold_seconds = 0.0
    reused = recomputed = 0
    for step in range(steps):
        delta = churn_delta(session.repository, churn, seed=step)
        started = perf_counter()
        result, _report = session.apply(delta)
        incremental_seconds += perf_counter() - started
        assert result.rematch is not None and not result.rematch.full_recompute
        reused += result.rematch.pairs_reused
        recomputed += result.rematch.pairs_recomputed

        repository_b, _ = repository_b.apply(delta)
        started = perf_counter()
        cold = cold_pipeline.run(queries_b, repository_b, delta_max)
        cold_seconds += perf_counter() - started

        assert _canonical(result.answer_sets) == _canonical(cold.answer_sets), (
            f"step {step}: incremental answers differ from cold re-match"
        )
    assert reused > recomputed  # at low churn, reuse must dominate
    return incremental_seconds, cold_seconds


def test_evolution_incremental_speedup_and_identical():
    """The acceptance check: byte-identity always, ≥ 2× at ≤ 10 % churn.

    A six-step churn stream at 5 % (≤ 10 %) over the full default
    workload, at δ = 0.35 where the per-schema search — the paper's cost
    driver — dominates.  The whole trial runs twice and each side takes
    its best total (standard noise reduction for single-shot wall
    clocks); measured headroom is ~3× on a quiet core, 2 is the floor we
    assert.  Byte-identity is asserted per step in every round,
    unconditionally; the wall-clock comparison is skipped when
    ``BENCH_TIMING_ASSERTS=0`` (set in CI, where shared runners make
    single-shot timing comparisons flaky).
    """
    trials = [_stream_trial(churn=0.05, steps=6, delta_max=0.35)
              for _ in range(2)]
    incremental_seconds = min(trial[0] for trial in trials)
    cold_seconds = min(trial[1] for trial in trials)
    if os.environ.get("BENCH_TIMING_ASSERTS", "1") != "0":
        assert cold_seconds >= 2.0 * incremental_seconds, (
            f"incremental re-match ({incremental_seconds:.3f}s over 6 steps) "
            f"is not ≥2x faster than cold re-match ({cold_seconds:.3f}s) "
            "at 5% churn"
        )

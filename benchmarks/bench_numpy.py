"""Benchmarks of the vectorised (numpy) execution path.

The numpy PR threads an optional vector layer through the scoring
stack — batched kernel gathers, stable-argsort candidate orders,
cumsum suffix-sum bounds, argpartition top-k cuts — behind the fourth
A/B switch (:func:`~repro.matching.similarity.vectors.numpy_disabled`),
with the pure-python code kept as the executable specification.  These
benches time each primitive against its spec twin on identical inputs,
so the paired means in ``BENCH_numpy.json`` track the vector layer's
advantage across commits the same way ``BENCH_kernel.json``'s pairs
track the scoring-kernel rewrite.

The repository-scale pair — ``test_bench_gather_sweep_vector`` /
``test_bench_gather_sweep_spec`` — replays the numpy contract's cold
gather sweep (every query element × every schema, warm cost rows) on
both paths; ``cold spec mean / vector mean`` is the ratio the
``bench_kernel.py`` contract test asserts ≥ 2× once per run.

Identity is asserted inline wherever a pair shares inputs (the
primitive pairs literally compare their outputs), unconditionally —
the property suite (``tests/properties/test_prop_numpy.py``) holds the
full end-to-end byte-identity contract.

The whole module skips when numpy is not installed (or hidden via
``REPRO_NO_NUMPY=1``): every pair needs both arms to mean anything.
"""

import pytest

from repro.evaluation import build_workload
from repro.evaluation.workloads import WorkloadConfig
from repro.matching import numpy_available, set_numpy_enabled
from repro.matching.similarity import vectors
from repro.matching.similarity.matrix import suffix_cost_sums

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="numpy not installed"
)

#: primitive input size — comfortably above the adaptive dispatch
#: floors (``VECTOR_MIN`` / ``VECTOR_MIN_AREA``), i.e. in the regime
#: the vector forms actually serve in production
_ROW_SIZE = 4_096


def _cost_row(size: int = _ROW_SIZE) -> list[float]:
    """A deterministic pseudo-random cost row in [0, 1] with ties."""
    row = []
    state = 0x9E3779B9
    for _ in range(size):
        state = (state * 1_103_515_245 + 12_345) % (1 << 31)
        row.append((state % 1_000) / 999.0)  # three digits => plenty of ties
    return row


# -- primitive pairs ---------------------------------------------------------

def test_bench_stable_order_vector(benchmark):
    """Candidate order of one row: batched stable argsort."""
    row = _cost_row()
    spec = tuple(j for _, j in sorted(zip(row, range(len(row)))))
    result = benchmark(lambda: vectors.stable_order(row).tolist())
    assert tuple(result) == spec


def test_bench_stable_order_spec(benchmark):
    """Candidate order of one row: the ``(cost, id)`` tuple sort spec."""
    row = _cost_row()
    benchmark(
        lambda: tuple(j for _, j in sorted(zip(row, range(len(row)))))
    )


def test_bench_suffix_sums_vector(benchmark):
    """Suffix-sum admissible bounds: reversed cumsum."""
    minima = _cost_row()
    with vectors.numpy_disabled():
        spec = suffix_cost_sums(minima)
    result = benchmark(vectors.suffix_sums, minima)
    assert result == spec


def test_bench_suffix_sums_spec(benchmark):
    """Suffix-sum admissible bounds: the python accumulation spec."""
    minima = _cost_row()

    def spec_sums():
        with vectors.numpy_disabled():
            return suffix_cost_sums(minima)

    benchmark(spec_sums)


def test_bench_topk_vector(benchmark):
    """Top-k candidate cut: argpartition + exact pivot-tie resolution."""
    row = _cost_row()
    k = 8
    spec = sorted(range(len(row)), key=lambda j: (row[j], j))[:k]
    result = benchmark(vectors.topk_indices, row, k)
    assert result == spec


def test_bench_topk_spec(benchmark):
    """Top-k candidate cut: the full ``(cost, id)`` sort spec."""
    row = _cost_row()
    k = 8
    benchmark(
        lambda: sorted(range(len(row)), key=lambda j: (row[j], j))[:k]
    )


# -- the repository-scale gather sweep pair ----------------------------------

#: a slice of the numpy contract's workload (bench_kernel._GATHER_CONFIG),
#: sized so pytest-benchmark can afford many rounds per arm
_SWEEP_CONFIG = WorkloadConfig(
    num_schemas=200,
    min_schema_size=16,
    max_schema_size=40,
    num_queries=6,
    query_size=6,
)


@pytest.fixture(scope="module")
def gather_universe():
    """One prepared workload: kernel with warm rows, queries, schemas."""
    workload = build_workload(_SWEEP_CONFIG)
    substrate = workload.objective.substrate()
    substrate.prepare(workload.repository)
    schemas = workload.repository.schemas()
    elements = [
        (element.name, element.datatype)
        for scenario in workload.suite.scenarios
        for element in scenario.query.elements()
    ]
    kernel = substrate.kernel()
    for name, datatype in elements:
        kernel.row(name, datatype)
    return kernel, elements, schemas


def _cold_gather_sweep(kernel, elements, schemas, numpy_on):
    kernel._gathers.clear()
    kernel._vgathers.clear()
    previous = set_numpy_enabled(numpy_on)
    try:
        return [
            kernel.gather(name, datatype, schema)
            for name, datatype in elements
            for schema in schemas
        ]
    finally:
        set_numpy_enabled(previous)


def test_bench_gather_sweep_vector(benchmark, gather_universe):
    """Cold gather sweep, batched: one fancy-index + argsort per label."""
    kernel, elements, schemas = gather_universe
    vector = benchmark(
        _cold_gather_sweep, kernel, elements, schemas, True
    )
    spec = _cold_gather_sweep(kernel, elements, schemas, False)
    assert repr(vector) == repr(spec), (
        "vectorised gathers differ from the pure-python spec gathers"
    )


def test_bench_gather_sweep_spec(benchmark, gather_universe):
    """Cold gather sweep, spec: one python sort per (label, schema)."""
    kernel, elements, schemas = gather_universe
    benchmark(_cold_gather_sweep, kernel, elements, schemas, False)

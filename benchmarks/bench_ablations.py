"""Benches for the ablation experiments (see DESIGN.md section 5).

``abl-matchers`` runs three parameter sweeps and is the slowest item in
the harness; it runs a single benchmark round by design.
"""

import pytest

from repro.experiments import run_experiment


def test_abl_increments(benchmark, warmed_bundle, record_figure):
    result = benchmark(run_experiment, "abl-increments", None)
    record_figure(result)
    rows = result.tables[0].rows
    for _n, naive, incremental, gain in rows:
        assert incremental <= naive + 1e-12
        assert gain >= -1e-12


def test_abl_hsize(benchmark, warmed_bundle, record_figure):
    result = benchmark(run_experiment, "abl-hsize", None)
    record_figure(result)
    true_row = next(r for r in result.tables[0].rows if r[0] == "1.00x")
    assert true_row[2] == 0.0


@pytest.mark.benchmark(min_rounds=1, max_time=0.000001, warmup=False)
def test_abl_matchers(benchmark, warmed_bundle, record_figure):
    result = benchmark.pedantic(
        run_experiment, args=("abl-matchers", None), rounds=1, iterations=1
    )
    record_figure(result)
    for table in result.tables:
        assert all(row[-1] == "yes" for row in table.rows)


def test_abl_pooling(benchmark, warmed_bundle, record_figure):
    result = benchmark(run_experiment, "abl-pooling", None)
    record_figure(result)
    judged = [row[2] for row in result.tables[0].rows]
    assert judged == sorted(judged)


def test_abl_noise(benchmark, warmed_bundle, record_figure):
    result = benchmark(run_experiment, "abl-noise", None)
    record_figure(result)
    clean = next(row for row in result.tables[0].rows if row[0] == 0.0)
    assert clean[3] == 0


def test_abl_scaling(benchmark, record_figure):
    result = benchmark.pedantic(
        run_experiment, args=("abl-scaling", None), rounds=1, iterations=1
    )
    record_figure(result)
    assert [row[0] for row in result.tables[0].rows] == [10, 100, 1000, 5000]

"""Bench fig08: the exact incremental worst-case example.

Pure math — the experiment itself asserts the paper's fractions (7/32,
1/16, 7/48) and raises on any deviation, so a passing bench certifies the
exact reproduction.
"""

from repro.experiments import run_experiment


def test_fig08_incremental_example(benchmark, record_figure):
    result = benchmark(run_experiment, "fig08", None)
    record_figure(result)
    rendered = result.tables[1].render()
    assert "7/32" in rendered
    assert "7/48" in rendered
